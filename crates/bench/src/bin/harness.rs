//! Experiment harness: regenerates every table/figure row from DESIGN.md's
//! per-experiment index (E1–E6, P1–P5) plus the scheduler benchmarks
//! (S1 → `BENCH_scheduling.json`, S2/S3 → `BENCH_matching.json`,
//! S4 → `BENCH_parallel.json`, S5 → `BENCH_streaming.json`,
//! S6 → `BENCH_recovery.json`, S7 → `BENCH_observability.json`,
//! S8 → `BENCH_vm.json`, S9 → `BENCH_storage.json`,
//! S10 → `BENCH_streaming_service.json`) and prints them in one run.
//!
//! ```sh
//! cargo run --release -p gammaflow-bench --bin harness          # all
//! cargo run --release -p gammaflow-bench --bin harness -- E1 P3 # subset
//! cargo run --release -p gammaflow-bench --bin harness -- S2 S3 # matching
//! cargo run --release -p gammaflow-bench --bin harness -- S4    # parallel
//! ```
//!
//! S6 measures crash-replay overhead only when built with
//! `--features fault-inject` (otherwise it records the fault-free
//! figures and marks the recovered series absent).
//!
//! The output of a release-mode run is recorded in EXPERIMENTS.md.

use gammaflow_bench::baseline::{read_baseline, warn_fps_regressions};
use gammaflow_bench::fixtures::{example1_family, example1_family_protected, fig1, fig2};
use gammaflow_core::{
    canonicalize_vars, check_equivalence, dataflow_to_gamma, fuse_all, gamma_to_dataflow,
    granularity, map_multiset, recover_shape, CheckConfig,
};
use gammaflow_dataflow::engine::SeqEngine;
use gammaflow_dataflow::engine_par::{run_parallel as df_parallel, ParEngineConfig};
use gammaflow_gamma::{run_parallel as gm_parallel, ParConfig, SeqInterpreter};
use gammaflow_lang::{parse_program, parse_reaction, pretty_program, pretty_reaction};
use gammaflow_multiset::{Element, ElementBag};
use gammaflow_workloads::{
    parallel_loops, primes, random_dag, sum, wide_chains, wide_pairs, DagParams,
};
use std::time::Instant;

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("[{id}] {title}");
    println!("================================================================");
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Median wall time of `f` over `n` runs, in milliseconds.
fn time_median<R>(n: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            let r = f();
            let e = ms(t.elapsed());
            drop(r);
            e
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn e1() {
    banner(
        "E1",
        "Fig. 1 / Example 1 — Algorithm 1 output and execution",
    );
    let g = fig1();
    let conv = dataflow_to_gamma(&g).unwrap();
    println!("{}", pretty_program(&conv.program));
    println!("\ninitial multiset M = {}", conv.initial);
    let report = check_equivalence(&g, &CheckConfig::default()).unwrap();
    println!(
        "equivalent = {}   dataflow outputs = {}   gamma firings = {}",
        report.equivalent, report.dataflow_outputs, report.gamma_firings
    );
}

fn e2() {
    banner("E2", "Fig. 2 / Example 2 — nine reactions, loop execution");
    let g = fig2(5, 3, 10);
    let conv = dataflow_to_gamma(&g).unwrap();
    println!("{}", pretty_program(&conv.program));
    let gm = SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 7)
        .run()
        .unwrap();
    println!(
        "\nstatus {:?}, total firings {}, per reaction:",
        gm.status,
        gm.stats.firings_total()
    );
    for (r, n) in conv
        .program
        .reactions
        .iter()
        .zip(gm.stats.firings_per_reaction.iter())
    {
        println!("  {:6} fired {n} times", r.name);
    }
    let report = check_equivalence(&g, &CheckConfig::default()).unwrap();
    println!(
        "equivalent = {}   observable = {}",
        report.equivalent, report.dataflow_outputs
    );
}

fn e3() {
    banner(
        "E3",
        "§III-A3 reductions — fusion to Rd1; reduced Example 2",
    );
    let conv = dataflow_to_gamma(&fig1()).unwrap();
    let protected: Vec<_> = ["A1", "B1", "C1", "D1", "m"]
        .iter()
        .map(|l| gammaflow_multiset::Symbol::intern(l))
        .collect();
    let (fused, report) = fuse_all(&conv.program, &protected);
    println!(
        "Example 1: {} reactions -> {} (paper: 3 -> 1); fused chain: {:?}",
        report.before, report.after, report.fused
    );
    println!(
        "{}",
        pretty_reaction(&canonicalize_vars(&fused.reactions[0]))
    );
    let g_before = granularity(&conv.program);
    let g_after = granularity(&fused);
    println!(
        "granularity: reactions {} -> {}, mean arity {:.1} -> {:.1}",
        g_before.reactions,
        g_after.reactions,
        g_before.mean_arity_milli as f64 / 1000.0,
        g_after.mean_arity_milli as f64 / 1000.0
    );

    // The paper's hand-reduced Example 2 (9 -> 6) and its residue.
    let full = parse_program(include_str!("example2_full.gamma")).unwrap();
    let reduced = parse_program(include_str!("example2_reduced.gamma")).unwrap();
    let initial: ElementBag = [
        Element::new(5, "A1", 0u64),
        Element::new(3, "B1", 0u64),
        Element::new(10, "C1", 0u64),
    ]
    .into_iter()
    .collect();
    let a = SeqInterpreter::with_seed(&full, initial.clone(), 1)
        .run()
        .unwrap();
    let b = SeqInterpreter::with_seed(&reduced, initial, 1)
        .run()
        .unwrap();
    println!(
        "Example 2: full 9 reactions, {} firings, final = {}",
        a.stats.firings_total(),
        a.multiset
    );
    println!(
        "           reduced 6 reactions, {} firings, final = {}  <- stranded residue",
        b.stats.firings_total(),
        b.multiset
    );
}

fn e4() {
    banner(
        "E4",
        "Algorithm 2 — node recovery, round trips, Fig. 4 mapping",
    );
    let g = fig2(5, 3, 10);
    let conv = dataflow_to_gamma(&g).unwrap();
    print!("recovered shapes:");
    for r in &conv.program.reactions {
        print!("  {}:{:?}", r.name, recover_shape(r));
    }
    println!();
    let back = gamma_to_dataflow(&conv.program, &conv.initial).unwrap();
    println!(
        "round trip Fig.2 -> Gamma -> dataflow: isomorphic = {}",
        gammaflow_dataflow::iso::isomorphic(&g, &back)
    );

    let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
    println!("\nFig. 4 replication (2-ary reaction):");
    println!(
        "{:>8} {:>10} {:>10} {:>12}",
        "|M|", "instances", "leftover", "map time ms"
    );
    for size in [6usize, 60, 600, 6000] {
        let m: ElementBag = (1..=size as i64).map(|v| Element::pair(v, "n")).collect();
        let t = time_median(5, || map_multiset(&r, &m, usize::MAX).unwrap());
        let mapping = map_multiset(&r, &m, usize::MAX).unwrap();
        println!(
            "{:>8} {:>10} {:>10} {:>12.3}",
            size,
            mapping.instances,
            mapping.leftover.len(),
            t
        );
    }
}

fn e5() {
    banner(
        "E5",
        "Fig. 3 grammar — parser/pretty round trip on all outputs",
    );
    let mut count = 0;
    for conv in [
        dataflow_to_gamma(&fig1()).unwrap(),
        dataflow_to_gamma(&fig2(5, 3, 10)).unwrap(),
        dataflow_to_gamma(&example1_family(8)).unwrap(),
    ] {
        let printed = pretty_program(&conv.program);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed, conv.program);
        count += conv.program.len();
    }
    println!("parse(pretty(·)) = id on {count} generated reactions  [full property suite in `cargo test`]");
}

fn e6() {
    banner("E6", "§III-C — differential equivalence on random programs");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>12}",
        "seed", "nodes", "equal", "df firings", "gm firings"
    );
    for seed in 0..8u64 {
        let dag = random_dag(
            seed,
            &DagParams {
                roots: 4,
                layers: 4,
                width: 5,
                range: 1000,
            },
        );
        let report = check_equivalence(&dag.graph, &CheckConfig::default()).unwrap();
        println!(
            "{:>6} {:>8} {:>8} {:>12} {:>12}",
            seed,
            dag.graph.node_count(),
            report.equivalent,
            report.dataflow_firings,
            report.gamma_firings
        );
        assert!(report.equivalent);
    }
}

fn m1() {
    banner(
        "M1",
        "Trace reuse (the paper's motivating application, ref. [3])",
    );
    use gammaflow_gamma::{analyze_reuse, ExecConfig, Selection};
    // The Fig. 2 loop re-fires several nodes with identical values every
    // iteration (y's steer, the control distribution): measure how much a
    // DF-DTM-style memo table would save, per reaction, for growing z.
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "z", "firings", "redundant", "memoizable"
    );
    for z in [4i64, 16, 64] {
        let g = fig2(5, z, 10);
        let conv = dataflow_to_gamma(&g).unwrap();
        let config = ExecConfig {
            record_trace: true,
            selection: Selection::Seeded(1),
            ..ExecConfig::default()
        };
        let result = SeqInterpreter::with_config(&conv.program, conv.initial.clone(), config)
            .unwrap()
            .run()
            .unwrap();
        let report = analyze_reuse(result.trace.as_deref().unwrap_or(&[]));
        println!(
            "{:>6} {:>10} {:>12} {:>11.1}%",
            z,
            report.total,
            report.redundant,
            report.ratio() * 100.0
        );
    }
    println!("top reusable reactions at z = 64:");
    let g = fig2(5, 64, 10);
    let conv = dataflow_to_gamma(&g).unwrap();
    let config = ExecConfig {
        record_trace: true,
        selection: Selection::Seeded(1),
        ..ExecConfig::default()
    };
    let result = SeqInterpreter::with_config(&conv.program, conv.initial.clone(), config)
        .unwrap()
        .run()
        .unwrap();
    let report = analyze_reuse(result.trace.as_deref().unwrap_or(&[]));
    for row in report.per_reaction.iter().take(4) {
        println!(
            "  {:6} {:>5} firings, {:>4} distinct -> {:>4} reusable",
            row.name,
            row.firings,
            row.distinct,
            row.redundant()
        );
    }
}

fn p1() {
    banner(
        "P1",
        "Granularity vs parallelism (fused vs unfused, Example-1 family)",
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "width", "reactions", "fused", "seq ms", "fused seq ms", "par(4) ms", "fused par ms"
    );
    for groups in [4usize, 16, 64] {
        let g = example1_family(groups);
        let conv = dataflow_to_gamma(&g).unwrap();
        let (fused, _) = fuse_all(&conv.program, &example1_family_protected(groups));
        let t_seq = time_median(5, || {
            SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 1)
                .run()
                .unwrap()
        });
        let t_fused = time_median(5, || {
            SeqInterpreter::with_seed(&fused, conv.initial.clone(), 1)
                .run()
                .unwrap()
        });
        let par = |prog: &gammaflow_gamma::GammaProgram| {
            let prog = prog.clone();
            let init = conv.initial.clone();
            time_median(5, move || {
                gm_parallel(
                    &prog,
                    init.clone(),
                    &ParConfig {
                        workers: 4,
                        seed: 1,
                        ..ParConfig::default()
                    },
                )
                .unwrap()
            })
        };
        let t_par = par(&conv.program);
        let t_fused_par = par(&fused);
        println!(
            "{:>6} {:>10} {:>10} {:>12.3} {:>12.3} {:>14.3} {:>14.3}",
            groups,
            conv.program.len(),
            fused.len(),
            t_seq,
            t_fused,
            t_par,
            t_fused_par
        );
    }
    println!("(expected shape: fused needs 1/3 the firings; unfused exposes more parallel steps)");
}

fn p2() {
    banner("P2", "Dataflow engine PE scaling");
    use gammaflow_dataflow::engine_par::Partition;
    let wide = wide_pairs(7, 1024);
    let chains = wide_chains(7, 16, 2000);
    let loops = parallel_loops(8, 3, 100, 1);
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload/partition", "seq ms", "1 PE", "2 PE", "4 PE", "8 PE"
    );
    let cases = [
        ("wide_1024_pairs/hash", &wide.graph, Partition::Hash),
        ("chains_16x2000/hash", &chains.graph, Partition::Hash),
        ("chains_16x2000/block", &chains.graph, Partition::Block),
        ("loops_8x100/hash", &loops.graph, Partition::Hash),
    ];
    for (name, graph, partition) in cases {
        let t_seq = time_median(5, || SeqEngine::new(graph).run().unwrap());
        let mut row = format!("{name:<28} {t_seq:>10.3}");
        for pes in [1usize, 2, 4, 8] {
            let config = ParEngineConfig {
                pes,
                partition,
                ..ParEngineConfig::default()
            };
            let t = time_median(5, || df_parallel(graph, &config).unwrap());
            row.push_str(&format!(" {t:>10.3}"));
        }
        println!("{row}");
    }
    println!("(expected shape: block-partitioned chains scale; hash partitioning pays a");
    println!(" cross-PE hop per token; fine-grain loops do not amortise communication —");
    println!(" the classic dataflow-machine result that motivated TALM's coarse tasks)");
}

fn p3() {
    banner("P3", "Gamma interpreter scaling (classic workloads)");
    let sum_w = sum(&(1..=512).collect::<Vec<_>>());
    let primes_w = primes(128);
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "workload", "seq ms", "par x1", "par x2", "par x4"
    );
    for (name, w) in [("sum_512", &sum_w), ("primes_128", &primes_w)] {
        let t_seq = time_median(3, || {
            SeqInterpreter::with_seed(&w.program, w.initial.clone(), 1)
                .run()
                .unwrap()
        });
        let mut row = format!("{name:<14} {t_seq:>10.3}");
        for workers in [1usize, 2, 4] {
            let t = time_median(3, || {
                gm_parallel(
                    &w.program,
                    w.initial.clone(),
                    &ParConfig {
                        workers,
                        seed: 1,
                        ..ParConfig::default()
                    },
                )
                .unwrap()
            });
            row.push_str(&format!(" {t:>10.3}"));
        }
        println!("{row}");
    }
    println!("(expected shape: associative sum scales; single-bucket sieve is match-bound)");

    // Matching-strategy ablation: the same programs on an unindexed bag.
    println!("\nmatching ablation (deterministic schedule):");
    println!(
        "{:<14} {:>14} {:>14} {:>8}",
        "workload", "indexed ms", "naive ms", "ratio"
    );
    use gammaflow_gamma::run_naive;
    use gammaflow_gamma::{ExecConfig, Selection};
    let sum_small = sum(&(1..=192).collect::<Vec<_>>());
    let primes_small = primes(96);
    for (name, w) in [("sum_192", &sum_small), ("primes_96", &primes_small)] {
        let t_indexed = time_median(3, || {
            SeqInterpreter::with_config(
                &w.program,
                w.initial.clone(),
                ExecConfig {
                    selection: Selection::Deterministic,
                    ..ExecConfig::default()
                },
            )
            .unwrap()
            .run()
            .unwrap()
        });
        let t_naive = time_median(3, || {
            run_naive(&w.program, w.initial.clone(), u64::MAX).unwrap()
        });
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>8.1}x",
            name,
            t_indexed,
            t_naive,
            t_naive / t_indexed.max(1e-9)
        );
    }
    println!("(expected shape: the (label,tag) index wins on labelled programs; on the");
    println!(" single-label sieve both degrade to bucket scans)");
}

fn p4() {
    banner("P4", "Conversion throughput");
    println!(
        "{:>8} {:>8} {:>14} {:>14}",
        "nodes", "edges", "alg1 ms", "alg2 ms"
    );
    for nodes in [100usize, 1000, 10000] {
        let width = (nodes / 20).max(1);
        let dag = random_dag(
            42,
            &DagParams {
                roots: width.max(2),
                layers: 18,
                width,
                range: 1000,
            },
        );
        let t1 = time_median(5, || dataflow_to_gamma(&dag.graph).unwrap());
        let conv = dataflow_to_gamma(&dag.graph).unwrap();
        let t2 = time_median(5, || {
            gamma_to_dataflow(&conv.program, &conv.initial).unwrap()
        });
        println!(
            "{:>8} {:>8} {:>14.3} {:>14.3}",
            dag.graph.node_count(),
            dag.graph.edge_count(),
            t1,
            t2
        );
    }
}

fn p5() {
    banner("P5", "Fig. 4 replication cost sweep");
    let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
    let rc = parse_reaction("R = replace [x,'n'], [y,'n'] by [x-y,'d'] where x > y").unwrap();
    println!(
        "{:>8} {:>14} {:>18}",
        "|M|", "plain map ms", "where-cond map ms"
    );
    for size in [64usize, 256, 1024] {
        let m: ElementBag = (1..=size as i64).map(|v| Element::pair(v, "n")).collect();
        let t_plain = time_median(5, || map_multiset(&r, &m, usize::MAX).unwrap());
        let t_cond = time_median(5, || map_multiset(&rc, &m, usize::MAX).unwrap());
        println!("{size:>8} {t_plain:>14.3} {t_cond:>18.3}");
    }
}

// ------------------------------------------------------------------ S1 ----

/// One engine's timing on one workload, in the committed BENCH json files.
#[derive(serde::Serialize, serde::Deserialize)]
struct EngineRow {
    seconds: f64,
    firings: u64,
    firings_per_sec: f64,
}

/// One workload's rescan-vs-delta comparison.
#[derive(serde::Serialize, serde::Deserialize)]
struct SchedulingRow {
    workload: String,
    selection: String,
    firings: u64,
    rescan: EngineRow,
    delta: EngineRow,
    speedup: f64,
    identical_final_multiset: bool,
}

/// S1: delta-driven scheduling vs the rescanning reference, recorded as
/// machine-readable `BENCH_scheduling.json` so the perf trajectory is
/// tracked across PRs.
fn s1() {
    use gammaflow_gamma::{ExecConfig, Scheduling, Selection, Status};
    banner(
        "S1",
        "Delta-driven reaction scheduling vs rescanning baseline",
    );

    let time_engine = |program: &gammaflow_gamma::GammaProgram,
                       initial: &ElementBag,
                       selection: Selection,
                       scheduling: Scheduling|
     -> (f64, u64, ElementBag) {
        let t = Instant::now();
        let result = SeqInterpreter::with_config(
            program,
            initial.clone(),
            ExecConfig {
                selection,
                scheduling,
                ..ExecConfig::default()
            },
        )
        .expect("program compiles")
        .run()
        .expect("run succeeds");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(result.status, Status::Stable, "workload must stabilise");
        (secs, result.stats.firings_total(), result.multiset)
    };

    let mut rows = Vec::new();
    let mut workloads: Vec<(String, Selection, gammaflow_gamma::GammaProgram, ElementBag)> =
        Vec::new();

    // The headline workload: 16 independent Fig. 2 loops, ~29k firings
    // over 144 reactions. Rescanning probes every reaction after every
    // firing; the delta worklist re-searches only the few reactions
    // reachable from each firing's products.
    let loops = parallel_loops(16, 3, 200, 5);
    let conv = dataflow_to_gamma(&loops.graph).expect("loop graph converts");
    workloads.push((
        "parallel_loops_16x200".into(),
        Selection::Deterministic,
        conv.program,
        conv.initial,
    ));

    // A wide converted expression DAG: one enabled reaction per node,
    // firing each exactly once.
    let dag = random_dag(
        7,
        &DagParams {
            roots: 24,
            layers: 5,
            width: 24,
            range: 1000,
        },
    );
    let conv = dataflow_to_gamma(&dag.graph).expect("dag converts");
    workloads.push((
        "random_dag_24x5x24".into(),
        Selection::Deterministic,
        conv.program,
        conv.initial,
    ));

    // The single-reaction sieve: no reactions to skip, so this is the
    // worst case for the scheduler — included to show the overhead bound
    // (the final multiset is the prime set under any schedule).
    let sieve = gammaflow_workloads::primes(2_000);
    workloads.push((
        "primes_sieve_2000".into(),
        Selection::Seeded(1),
        sieve.program,
        sieve.initial,
    ));

    println!(
        "{:<24} {:>9} {:>13} {:>13} {:>9}",
        "workload", "firings", "rescan f/s", "delta f/s", "speedup"
    );
    for (name, selection, program, initial) in &workloads {
        let (rescan_s, rescan_firings, rescan_final) =
            time_engine(program, initial, *selection, Scheduling::Rescan);
        let (delta_s, delta_firings, delta_final) =
            time_engine(program, initial, *selection, Scheduling::Delta);
        let identical = rescan_final == delta_final && rescan_firings == delta_firings;
        assert!(
            identical,
            "{name}: engines diverged (rescan {rescan_firings} firings vs delta {delta_firings})"
        );
        let rescan_fps = rescan_firings as f64 / rescan_s;
        let delta_fps = delta_firings as f64 / delta_s;
        println!(
            "{name:<24} {rescan_firings:>9} {rescan_fps:>13.0} {delta_fps:>13.0} {:>8.2}x",
            delta_fps / rescan_fps
        );
        rows.push(SchedulingRow {
            workload: name.clone(),
            selection: match selection {
                Selection::Deterministic => "deterministic".into(),
                Selection::Seeded(s) => format!("seeded({s})"),
            },
            firings: delta_firings,
            rescan: EngineRow {
                seconds: rescan_s,
                firings: rescan_firings,
                firings_per_sec: rescan_fps,
            },
            delta: EngineRow {
                seconds: delta_s,
                firings: delta_firings,
                firings_per_sec: delta_fps,
            },
            speedup: delta_fps / rescan_fps,
            identical_final_multiset: identical,
        });
    }

    #[derive(serde::Serialize, serde::Deserialize)]
    struct SchedulingReport {
        bench: String,
        rows: Vec<SchedulingRow>,
    }
    // Baseline comparison against the committed file, before overwriting.
    let baseline: Vec<(String, f64)> = read_baseline::<SchedulingReport>("BENCH_scheduling.json")
        .map(|old| {
            old.rows
                .iter()
                .flat_map(|r| {
                    [
                        (format!("{}/rescan", r.workload), r.rescan.firings_per_sec),
                        (format!("{}/delta", r.workload), r.delta.firings_per_sec),
                    ]
                })
                .collect()
        })
        .unwrap_or_default();
    let current: Vec<(String, f64)> = rows
        .iter()
        .flat_map(|r| {
            [
                (format!("{}/rescan", r.workload), r.rescan.firings_per_sec),
                (format!("{}/delta", r.workload), r.delta.firings_per_sec),
            ]
        })
        .collect();
    warn_fps_regressions("BENCH_scheduling.json", &baseline, &current);

    let report = SchedulingReport {
        bench: "scheduling".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_scheduling.json", &json).expect("write BENCH_scheduling.json");
    println!("wrote BENCH_scheduling.json");
}

// ------------------------------------------------------------------ S2 ----

/// One workload's three-engine comparison in BENCH_matching.json.
#[derive(serde::Serialize, serde::Deserialize)]
struct MatchingRow {
    workload: String,
    selection: String,
    firings: u64,
    rescan: EngineRow,
    delta: EngineRow,
    rete: EngineRow,
    rete_speedup_vs_rescan: f64,
    rete_speedup_vs_delta: f64,
    rete_tokens_created: u64,
    rete_peak_live_tokens: u64,
    rete_guard_rejects: u64,
    identical_final_multiset: bool,
}

/// The BENCH_matching.json schema: S2 writes the file, S3 upserts its
/// adversarial row into the same `rows` array.
#[derive(serde::Serialize, serde::Deserialize)]
struct MatchingReport {
    bench: String,
    rows: Vec<MatchingRow>,
}

/// Workload rows owned by the S3 step inside BENCH_matching.json: S2
/// preserves exactly these when rewriting the file, and S3 upserts them.
const S3_WORKLOADS: &[&str] = &["cross_sum"];

/// The series keys ({workload}/rete) the matching steps compare against
/// the committed baseline.
fn matching_fps_series(rows: &[MatchingRow]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| (format!("{}/rete", r.workload), r.rete.firings_per_sec))
        .collect()
}

/// Time one workload under the three engines (asserting stability and
/// the self-check multiset for each), print the comparison line, and
/// produce its BENCH_matching.json row. Shared by S2 and S3.
fn matching_row(
    w: &gammaflow_workloads::Workload,
    selection: gammaflow_gamma::Selection,
) -> MatchingRow {
    use gammaflow_gamma::{ExecConfig, ExecResult, Scheduling, Selection, Status};

    let time_engine = |scheduling: Scheduling| -> (f64, ExecResult) {
        let t = Instant::now();
        let result = SeqInterpreter::with_config(
            &w.program,
            w.initial.clone(),
            ExecConfig {
                selection,
                scheduling,
                ..ExecConfig::default()
            },
        )
        .expect("program compiles")
        .run()
        .expect("run succeeds");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(result.status, Status::Stable, "{} must stabilise", w.name);
        assert_eq!(
            result.multiset, w.expected,
            "{} must land on its self-check multiset under {scheduling:?}",
            w.name
        );
        (secs, result)
    };

    let (rescan_s, rescan) = time_engine(Scheduling::Rescan);
    let (delta_s, delta) = time_engine(Scheduling::Delta);
    let (rete_s, rete) = time_engine(Scheduling::Rete);
    let firings = rete.stats.firings_total();
    assert_eq!(rescan.stats.firings_total(), firings, "{}", w.name);
    assert_eq!(delta.stats.firings_total(), firings, "{}", w.name);
    let rescan_fps = firings as f64 / rescan_s;
    let delta_fps = firings as f64 / delta_s;
    let rete_fps = firings as f64 / rete_s;
    let rete_stats = rete.rete.expect("rete run reports stats");
    println!(
        "{:<18} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>8.2}x {:>8}",
        w.name,
        firings,
        rescan_fps,
        delta_fps,
        rete_fps,
        rete_fps / rescan_fps,
        rete_stats.tokens_created,
    );
    MatchingRow {
        workload: w.name.to_string(),
        selection: match selection {
            Selection::Deterministic => "deterministic".into(),
            Selection::Seeded(s) => format!("seeded({s})"),
        },
        firings,
        rescan: EngineRow {
            seconds: rescan_s,
            firings,
            firings_per_sec: rescan_fps,
        },
        delta: EngineRow {
            seconds: delta_s,
            firings,
            firings_per_sec: delta_fps,
        },
        rete: EngineRow {
            seconds: rete_s,
            firings,
            firings_per_sec: rete_fps,
        },
        rete_speedup_vs_rescan: rete_fps / rescan_fps,
        rete_speedup_vs_delta: rete_fps / delta_fps,
        rete_tokens_created: rete_stats.tokens_created,
        rete_peak_live_tokens: rete_stats.peak_live_tokens,
        rete_guard_rejects: rete_stats.guard_rejects,
        identical_final_multiset: true,
    }
}

/// S2: the rete join-network matcher vs delta scheduling vs the
/// rescanning baseline, on the single-reaction sieve (the workload delta
/// scheduling could not accelerate — it is bound by per-firing search,
/// not by reaction selection) and the guard-heavy join workloads. Every
/// run must land on the workload's self-check multiset; results are
/// recorded in `BENCH_matching.json` for cross-PR tracking.
fn s2() {
    use gammaflow_gamma::Selection;
    use gammaflow_workloads::{divisor_sieve, interval_merge, triangles, Workload};
    banner("S2", "Rete partial-match memory vs delta vs rescan");

    // Chained-overlap interval soup: dense enough that merges cascade.
    let intervals: Vec<(i64, i64)> = (0..600i64)
        .map(|i| {
            let lo = (i * 137) % 9_000;
            (lo, lo + (i * 29) % 60)
        })
        .collect();
    let workloads: Vec<(Workload, Selection)> = vec![
        (primes(2_000), Selection::Seeded(1)),
        (divisor_sieve(2_000), Selection::Seeded(1)),
        (triangles(60, 39), Selection::Seeded(1)),
        (interval_merge(&intervals), Selection::Seeded(1)),
    ];

    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "workload", "firings", "rescan f/s", "delta f/s", "rete f/s", "vs resc", "tokens"
    );
    let rows: Vec<MatchingRow> = workloads
        .iter()
        .map(|(w, selection)| matching_row(w, *selection))
        .collect();

    // Baseline comparison against the committed file, before overwriting;
    // S3's rows (if committed) are preserved so a standalone S2 run does
    // not drop them. Only S3-owned workloads carry over — anything else
    // absent from the fresh run is a renamed/removed S2 row and must not
    // accrete in the file.
    let old = read_baseline::<MatchingReport>("BENCH_matching.json");
    let baseline: Vec<(String, f64)> = old
        .as_ref()
        .map(|old| matching_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_matching.json",
        &baseline,
        &matching_fps_series(&rows),
    );

    let mut report = MatchingReport {
        bench: "matching".into(),
        rows,
    };
    if let Some(old) = old {
        for r in old.rows {
            if S3_WORKLOADS.contains(&r.workload.as_str())
                && !report.rows.iter().any(|n| n.workload == r.workload)
            {
                report.rows.push(r);
            }
        }
    }
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_matching.json", &json).expect("write BENCH_matching.json");
    println!("wrote BENCH_matching.json");
}

// ------------------------------------------------------------------ S3 ----

/// S3: the adversarial unguarded n² cross product. Before spill-to-search
/// eviction landed, this workload is why `Scheduling::Rete` was opt-in —
/// an unbounded network memorises all `n·(n-1)` pairs before the first
/// firing. The default watermark demotes the terminal level instead; this
/// step records the three engines' throughput *and* the bounded peak
/// beta-token count, upserting its row into `BENCH_matching.json`
/// alongside S2's.
fn s3() {
    use gammaflow_gamma::Selection;
    use gammaflow_workloads::cross_sum;
    banner(
        "S3",
        "Adversarial n² cross product under the spill watermark",
    );

    let n = 400i64;
    let w = cross_sum(n);
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12} {:>9} {:>8}",
        "workload", "firings", "rescan f/s", "delta f/s", "rete f/s", "vs resc", "tokens"
    );
    let row = matching_row(&w, Selection::Seeded(1));
    let unbounded = (n * (n - 1)) as u64;
    assert!(
        row.rete_peak_live_tokens < unbounded,
        "watermark failed to bound the cross product: peak {} of {} pairs",
        row.rete_peak_live_tokens,
        unbounded
    );
    println!(
        "peak beta tokens: {} (unbounded cross product: {}; default watermark {})",
        row.rete_peak_live_tokens,
        unbounded,
        gammaflow_gamma::DEFAULT_SPILL_WATERMARK
    );

    // Upsert into the committed report: S2 owns the file layout, S3 only
    // replaces (or appends) its own row, so the steps compose in any
    // order and a standalone S3 run keeps S2's committed figures.
    let mut report =
        read_baseline::<MatchingReport>("BENCH_matching.json").unwrap_or(MatchingReport {
            bench: "matching".into(),
            rows: Vec::new(),
        });
    let baseline = matching_fps_series(&report.rows);
    warn_fps_regressions(
        "BENCH_matching.json",
        &baseline,
        &matching_fps_series(std::slice::from_ref(&row)),
    );
    report.rows.retain(|r| r.workload != row.workload);
    report.rows.push(row);
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_matching.json", &json).expect("write BENCH_matching.json");
    println!("wrote BENCH_matching.json");
}

// ------------------------------------------------------------------ S4 ----

/// One (workload, worker-count) comparison between the parallel engines
/// in BENCH_parallel.json.
#[derive(serde::Serialize, serde::Deserialize)]
struct ParallelRow {
    workload: String,
    workers: usize,
    firings: u64,
    probe_retry: EngineRow,
    sharded_rete: EngineRow,
    sharded_speedup_vs_probe: f64,
    /// Maximum per-worker peak live beta tokens across the sharded run's
    /// slices — the recorded evidence that the per-shard watermark held.
    max_shard_peak_tokens: u64,
    identical_final_multiset: bool,
}

/// The BENCH_parallel.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct ParallelReport {
    bench: String,
    rows: Vec<ParallelRow>,
}

fn parallel_fps_series(rows: &[ParallelRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            [
                (
                    format!("{}/w{}/probe_retry", r.workload, r.workers),
                    r.probe_retry.firings_per_sec,
                ),
                (
                    format!("{}/w{}/sharded_rete", r.workload, r.workers),
                    r.sharded_rete.firings_per_sec,
                ),
            ]
        })
        .collect()
}

/// S4: the delta-driven sharded-rete parallel engine vs the sampled
/// probe-retry baseline, swept over worker counts. Every run's final
/// multiset is asserted byte-identical to the sequential reference (the
/// workloads are confluent), and the sharded runs' per-worker peak beta
/// token counts are recorded so the per-shard watermark bound is part of
/// the committed evidence. Results go to `BENCH_parallel.json`.
fn s4() {
    use gammaflow_gamma::{ExecConfig, ParEngine, Selection, Status};
    banner("S4", "Sharded-rete parallel engine vs probe-retry baseline");

    // The headline workload: 16 independent Fig. 2 loops (tags advance
    // every iteration, so alpha-shard ownership rotates across workers)
    // plus the single-bucket associative fold (maximal shard skew: one
    // worker owns every key and the others must steal).
    let loops = parallel_loops(16, 3, 200, 5);
    let conv = dataflow_to_gamma(&loops.graph).expect("loop graph converts");
    let sum_w = sum(&(1..=2048).collect::<Vec<_>>());
    let workloads: Vec<(String, gammaflow_gamma::GammaProgram, ElementBag)> = vec![
        ("parallel_loops_16x200".into(), conv.program, conv.initial),
        ("sum_2048".into(), sum_w.program, sum_w.initial),
    ];

    println!(
        "{:<24} {:>3} {:>9} {:>14} {:>14} {:>9} {:>10}",
        "workload", "w", "firings", "probe f/s", "sharded f/s", "speedup", "peak tok"
    );
    let mut rows = Vec::new();
    for (name, program, initial) in &workloads {
        // Sequential reference final (deterministic rete): the byte-
        // identical target for every parallel run.
        let reference = SeqInterpreter::with_config(
            program,
            initial.clone(),
            ExecConfig {
                selection: Selection::Deterministic,
                ..ExecConfig::default()
            },
        )
        .expect("program compiles")
        .run()
        .expect("reference run succeeds");
        assert_eq!(reference.status, Status::Stable);

        for workers in [1usize, 2, 4, 8] {
            let mut engine_rows: Vec<(EngineRow, u64)> = Vec::new();
            for engine in [ParEngine::ProbeRetry, ParEngine::ShardedRete] {
                let config = ParConfig {
                    workers,
                    seed: 1,
                    engine,
                    ..ParConfig::default()
                };
                let mut firings = 0u64;
                let mut peak = 0u64;
                let secs = time_median(3, || {
                    let result = gm_parallel(program, initial.clone(), &config)
                        .expect("parallel run succeeds");
                    assert_eq!(result.exec.status, Status::Stable, "{name}");
                    assert_eq!(
                        result.exec.multiset, reference.multiset,
                        "{name} x{workers} {engine:?}: finals diverged"
                    );
                    firings = result.exec.stats.firings_total();
                    peak = result
                        .par
                        .shard_peak_tokens
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0);
                }) / 1e3;
                engine_rows.push((
                    EngineRow {
                        seconds: secs,
                        firings,
                        firings_per_sec: firings as f64 / secs,
                    },
                    peak,
                ));
            }
            let (probe, _) = engine_rows.remove(0);
            let (sharded, peak) = engine_rows.remove(0);
            let speedup = sharded.firings_per_sec / probe.firings_per_sec;
            println!(
                "{name:<24} {workers:>3} {:>9} {:>14.0} {:>14.0} {:>8.2}x {:>10}",
                sharded.firings, probe.firings_per_sec, sharded.firings_per_sec, speedup, peak
            );
            rows.push(ParallelRow {
                workload: name.clone(),
                workers,
                firings: sharded.firings,
                probe_retry: probe,
                sharded_rete: sharded,
                sharded_speedup_vs_probe: speedup,
                max_shard_peak_tokens: peak,
                identical_final_multiset: true,
            });
        }
    }

    let baseline: Vec<(String, f64)> = read_baseline::<ParallelReport>("BENCH_parallel.json")
        .map(|old| parallel_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_parallel.json",
        &baseline,
        &parallel_fps_series(&rows),
    );

    let report = ParallelReport {
        bench: "parallel".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

// ------------------------------------------------------------------ S5 ----

/// One streaming comparison in BENCH_streaming.json: the same wave
/// schedule executed by a persistent `Session` (matcher state resumed
/// across waves) vs a fresh interpreter rebuilt on the accumulated bag
/// every wave.
#[derive(serde::Serialize, serde::Deserialize)]
struct StreamingRow {
    workload: String,
    waves: usize,
    elements_per_wave: usize,
    firings: u64,
    rebuild_per_wave: EngineRow,
    session_resume: EngineRow,
    session_speedup_vs_rebuild: f64,
    identical_final_multiset: bool,
}

/// The BENCH_streaming.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct StreamingReport {
    bench: String,
    rows: Vec<StreamingRow>,
}

fn streaming_fps_series(rows: &[StreamingRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            [
                (
                    format!("{}/session", r.workload),
                    r.session_resume.firings_per_sec,
                ),
                (
                    format!("{}/rebuild", r.workload),
                    r.rebuild_per_wave.firings_per_sec,
                ),
            ]
        })
        .collect()
}

/// S5: the unified `Session` API on a streaming workload — wave-resume
/// over a persistent Rete network vs rebuilding the interpreter on the
/// accumulated bag every wave. The windowed-sum stream collapses each
/// window to a total that stays in the bag forever under a consumed
/// label, so a fresh matcher build pays O(history) token
/// materialisation per wave while the resumed session absorbs only the
/// wave's insertion delta. The workload's firing count and final
/// multiset are schedule-independent (pairwise integer folds per tag),
/// so the seeded engines are compared firing-for-firing and the finals
/// are asserted byte-identical in-run (to each other and to the
/// workload's self-check multiset). Results go to
/// `BENCH_streaming.json`.
fn s5() {
    use gammaflow_gamma::{ExecConfig, Selection, Session, Status};
    use gammaflow_workloads::windowed_sum;
    banner("S5", "Streaming sessions: wave-resume vs rebuild-per-wave");

    let (waves, windows_per_wave, per_window) = (64usize, 128usize, 2usize);
    let w = windowed_sum(waves, windows_per_wave, per_window, 42);
    let per_wave = windows_per_wave * per_window;

    // Session-resume: build matcher state once, inject + resume per wave.
    let t = Instant::now();
    let mut session = Session::build(&w.program)
        .selection(Selection::Seeded(1))
        .start(w.initial.clone())
        .expect("program compiles");
    for wave in &w.waves {
        let _ = session.inject(wave.iter().cloned());
        let wv = session.run_to_stable().expect("wave runs");
        assert_eq!(wv.status, Status::Stable);
    }
    let session_result = session.finish();
    let session_secs = t.elapsed().as_secs_f64();
    let session_firings = session_result.stats.firings_total();
    assert_eq!(
        session_result.multiset, w.expected,
        "session final must match the workload self-check"
    );

    // Rebuild-per-wave: a fresh interpreter (fresh compile, fresh Rete
    // build over the whole accumulated bag) every wave.
    let t = Instant::now();
    let mut bag = w.initial.clone();
    let mut rebuild_firings = 0u64;
    for wave in &w.waves {
        for e in wave {
            bag.insert(e.clone());
        }
        let result = SeqInterpreter::with_config(
            &w.program,
            bag,
            ExecConfig {
                selection: Selection::Seeded(1),
                ..ExecConfig::default()
            },
        )
        .expect("program compiles")
        .run()
        .expect("rebuild run succeeds");
        assert_eq!(result.status, Status::Stable);
        rebuild_firings += result.stats.firings_total();
        bag = result.multiset;
    }
    let rebuild_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        bag, session_result.multiset,
        "wave-resume and rebuild-per-wave finals must be byte-identical"
    );
    assert_eq!(
        session_firings, rebuild_firings,
        "windowed folds fire a schedule-independent count"
    );

    let session_fps = session_firings as f64 / session_secs;
    let rebuild_fps = rebuild_firings as f64 / rebuild_secs;
    let speedup = session_fps / rebuild_fps;
    println!(
        "{:<26} {:>3} waves x {:<4} {:>8} firings  rebuild {:>10.0} f/s  session {:>10.0} f/s  {:>6.2}x",
        w.name, waves, per_wave, session_firings, rebuild_fps, session_fps, speedup
    );

    let rows = vec![StreamingRow {
        workload: w.name.clone(),
        waves,
        elements_per_wave: per_wave,
        firings: session_firings,
        rebuild_per_wave: EngineRow {
            seconds: rebuild_secs,
            firings: rebuild_firings,
            firings_per_sec: rebuild_fps,
        },
        session_resume: EngineRow {
            seconds: session_secs,
            firings: session_firings,
            firings_per_sec: session_fps,
        },
        session_speedup_vs_rebuild: speedup,
        identical_final_multiset: true,
    }];

    let baseline: Vec<(String, f64)> = read_baseline::<StreamingReport>("BENCH_streaming.json")
        .map(|old| streaming_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_streaming.json",
        &baseline,
        &streaming_fps_series(&rows),
    );

    let report = StreamingReport {
        bench: "streaming".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    println!("wrote BENCH_streaming.json");
}

// ------------------------------------------------------------------ S6 ----

/// Snapshot/restore micro-costs for one engine in BENCH_recovery.json:
/// what serialising a live session costs, what rebuilding one from the
/// wire costs, and the cold matcher build on the same bag for scale.
#[derive(serde::Serialize, serde::Deserialize)]
struct SnapshotRow {
    workload: String,
    engine: String,
    bag_elements: usize,
    snapshot_bytes: usize,
    snapshot_ms: f64,
    restore_ms: f64,
    cold_build_ms: f64,
    restored_final_identical: bool,
}

/// Fault-free vs crash-recovered throughput for one parallel config in
/// BENCH_recovery.json. `recovered` is absent when the harness was built
/// without `--features fault-inject`.
#[derive(serde::Serialize, serde::Deserialize)]
struct RecoveryRow {
    workload: String,
    engine: String,
    workers: usize,
    firings: u64,
    fault_free: EngineRow,
    recovered: Option<EngineRow>,
    replay_overhead: Option<f64>,
    workers_lost: u64,
    waves_replayed: u64,
    identical_final_multiset: bool,
}

/// The BENCH_recovery.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct RecoveryReport {
    bench: String,
    snapshots: Vec<SnapshotRow>,
    rows: Vec<RecoveryRow>,
}

fn recovery_fps_series(rows: &[RecoveryRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            let mut series = vec![(
                format!("{}/{}/w{}/fault_free", r.workload, r.engine, r.workers),
                r.fault_free.firings_per_sec,
            )];
            if let Some(rec) = &r.recovered {
                series.push((
                    format!("{}/{}/w{}/recovered", r.workload, r.engine, r.workers),
                    rec.firings_per_sec,
                ));
            }
            series
        })
        .collect()
}

/// S6: durability costs. The snapshot figures stream the full
/// windowed-sum workload into a session (so the bag holds the whole
/// consumed history, not a toy payload), then time `snapshot_state` +
/// serde_json against `Session::restore` from the wire and a cold
/// matcher build over the same bag, asserting the restored bag is
/// byte-identical. The replay figures run a single dense fold wave
/// fault-free and — when built with `--features fault-inject` — again
/// with an injected worker panic recovered by the wave-entry replay,
/// asserting both runs land on the workload's self-check final. Results
/// go to `BENCH_recovery.json`.
fn s6() {
    use gammaflow_gamma::fault::ENABLED as FAULT_INJECT;
    use gammaflow_gamma::{Engine, Fault, FaultPlan, ParEngine, Session, Status};
    use gammaflow_workloads::windowed_sum;
    banner(
        "S6",
        "Durability: snapshot/restore cost and crash-replay overhead",
    );

    // Snapshot/restore micro-costs over a session with real history.
    let stream = windowed_sum(32, 64, 2, 42);
    let mut snapshots = Vec::new();
    for (engine_name, engine) in [
        ("seq_rete", Engine::Seq),
        ("sharded_rete", Engine::Parallel(ParEngine::ShardedRete)),
    ] {
        let mut session = Session::build(&stream.program)
            .engine(engine)
            .workers(4)
            .start(stream.initial.clone())
            .expect("program compiles");
        for wave in &stream.waves {
            let _ = session.inject(wave.iter().cloned());
            let wv = session.run_to_stable().expect("wave runs");
            assert_eq!(wv.status, Status::Stable);
        }
        let bag = session.snapshot();
        let json = serde_json::to_string(&session.snapshot_state()).expect("snapshot serialises");
        let snapshot_ms = time_median(5, || {
            serde_json::to_string(&session.snapshot_state()).expect("snapshot serialises")
        });
        let restore_ms = time_median(5, || {
            let snap = serde_json::from_str(&json).expect("snapshot parses");
            Session::restore(&stream.program, snap).expect("restore succeeds")
        });
        let cold_build_ms = time_median(5, || {
            Session::build(&stream.program)
                .engine(engine)
                .workers(4)
                .start(bag.clone())
                .expect("program compiles")
        });
        let restored = Session::restore(
            &stream.program,
            serde_json::from_str(&json).expect("snapshot parses"),
        )
        .expect("restore succeeds");
        let identical = restored.snapshot() == bag;
        assert!(
            identical,
            "{engine_name}: the restored bag must be byte-identical"
        );
        println!(
            "snapshot {:<13} |M| {:>5}  {:>8} bytes  snap {:>7.3} ms  restore {:>7.3} ms  cold build {:>7.3} ms",
            engine_name,
            bag.len(),
            json.len(),
            snapshot_ms,
            restore_ms,
            cold_build_ms
        );
        snapshots.push(SnapshotRow {
            workload: stream.name.clone(),
            engine: engine_name.into(),
            bag_elements: bag.len(),
            snapshot_bytes: json.len(),
            snapshot_ms,
            restore_ms,
            cold_build_ms,
            restored_final_identical: identical,
        });
    }

    // Crash-replay overhead on a single dense fold wave.
    let values: Vec<i64> = (1..=2048).collect();
    let fold = sum(&values);
    let mut rows = Vec::new();
    for (engine_name, engine) in [
        ("sharded_rete", ParEngine::ShardedRete),
        ("probe_retry", ParEngine::ProbeRetry),
    ] {
        for workers in [2usize, 4] {
            let run = |faults: Option<FaultPlan>| {
                let mut builder = Session::build(&fold.program)
                    .engine(Engine::Parallel(engine))
                    .workers(workers);
                if let Some(plan) = faults {
                    builder = builder.faults(plan);
                }
                let t = Instant::now();
                let mut session = builder
                    .start(fold.initial.clone())
                    .expect("program compiles");
                let wv = session.run_to_stable().expect("wave runs");
                let secs = t.elapsed().as_secs_f64();
                assert_eq!(wv.status, Status::Stable);
                let result = session.finish_parallel();
                assert_eq!(
                    result.exec.multiset, fold.expected,
                    "{engine_name} x{workers}: final must match the self-check"
                );
                (secs, result.exec.stats.firings_total(), result.par)
            };
            let median = |samples: &mut Vec<f64>| -> f64 {
                samples.sort_by(f64::total_cmp);
                samples[samples.len() / 2]
            };
            let mut base_secs = Vec::new();
            let mut firings = 0u64;
            for _ in 0..3 {
                let (secs, fired, _) = run(None);
                base_secs.push(secs);
                firings = fired;
            }
            let base = median(&mut base_secs);
            let fault_free = EngineRow {
                seconds: base,
                firings,
                firings_per_sec: firings as f64 / base,
            };
            let (recovered, replay_overhead, workers_lost, waves_replayed) = if FAULT_INJECT {
                let plan = FaultPlan::single(
                    0,
                    Fault::WorkerPanic {
                        worker: 0,
                        at_firing: 8,
                    },
                );
                let mut rec_secs = Vec::new();
                let mut lost = 0u64;
                let mut replayed = 0u64;
                for _ in 0..3 {
                    let (secs, _, par) = run(Some(plan.clone()));
                    rec_secs.push(secs);
                    lost += par.workers_lost;
                    replayed += par.waves_replayed;
                }
                let rec = median(&mut rec_secs);
                let row = EngineRow {
                    seconds: rec,
                    firings,
                    firings_per_sec: firings as f64 / rec,
                };
                (Some(row), Some(rec / base), lost, replayed)
            } else {
                (None, None, 0, 0)
            };
            match (&recovered, replay_overhead) {
                (Some(rec), Some(overhead)) => println!(
                    "replay   {:<13} x{:<2} {:>8} firings  fault-free {:>10.0} f/s  recovered {:>10.0} f/s  {:>5.2}x  (lost {} replayed {})",
                    engine_name,
                    workers,
                    firings,
                    fault_free.firings_per_sec,
                    rec.firings_per_sec,
                    overhead,
                    workers_lost,
                    waves_replayed
                ),
                _ => println!(
                    "replay   {:<13} x{:<2} {:>8} firings  fault-free {:>10.0} f/s  (fault-inject off: no recovered series)",
                    engine_name, workers, firings, fault_free.firings_per_sec
                ),
            }
            rows.push(RecoveryRow {
                workload: fold.name.to_string(),
                engine: engine_name.into(),
                workers,
                firings,
                fault_free,
                recovered,
                replay_overhead,
                workers_lost,
                waves_replayed,
                identical_final_multiset: true,
            });
        }
    }

    let baseline: Vec<(String, f64)> = read_baseline::<RecoveryReport>("BENCH_recovery.json")
        .map(|old| recovery_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_recovery.json",
        &baseline,
        &recovery_fps_series(&rows),
    );

    let report = RecoveryReport {
        bench: "recovery".into(),
        snapshots,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    println!("wrote BENCH_recovery.json");
}

// ------------------------------------------------------------------ S7 ----

/// One workload × engine cell of BENCH_observability.json: the same run
/// timed with tracing off, into an in-memory ring, and onto a JSONL
/// file. Overheads are wall-time ratios against the off series (1.0 =
/// free).
#[derive(serde::Serialize, serde::Deserialize)]
struct ObservabilityRow {
    workload: String,
    engine: String,
    firings: u64,
    off: EngineRow,
    ring: EngineRow,
    jsonl: EngineRow,
    ring_overhead: f64,
    jsonl_overhead: f64,
    trace_records: u64,
}

/// The BENCH_observability.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct ObservabilityReport {
    bench: String,
    rows: Vec<ObservabilityRow>,
}

fn observability_fps_series(rows: &[ObservabilityRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            [
                (
                    format!("{}/{}/off", r.workload, r.engine),
                    r.off.firings_per_sec,
                ),
                (
                    format!("{}/{}/ring", r.workload, r.engine),
                    r.ring.firings_per_sec,
                ),
                (
                    format!("{}/{}/jsonl", r.workload, r.engine),
                    r.jsonl.firings_per_sec,
                ),
            ]
        })
        .collect()
}

/// Drive one workload config three times per mode (off / ring / jsonl)
/// and fold the median timings into a row. `drive` owns the whole
/// session lifecycle and returns (seconds, firings) after asserting the
/// final against the workload self-check.
fn observe_modes(
    workload: &str,
    engine: &str,
    jsonl_path: &str,
    drive: &dyn Fn(Option<std::sync::Arc<dyn gammaflow_gamma::TraceSink>>) -> (f64, u64),
) -> ObservabilityRow {
    use gammaflow_gamma::{JsonlSink, RingSink};
    use std::sync::Arc;
    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(f64::total_cmp);
        samples[samples.len() / 2]
    };
    const RUNS: usize = 3;

    let mut firings = 0u64;
    let mut off_secs = Vec::new();
    for _ in 0..RUNS {
        let (secs, fired) = drive(None);
        off_secs.push(secs);
        firings = fired;
    }
    let off = median(off_secs);

    let mut trace_records = 0u64;
    let mut ring_secs = Vec::new();
    for _ in 0..RUNS {
        let ring = Arc::new(RingSink::new(1 << 22));
        let (secs, _) = drive(Some(ring.clone()));
        assert_eq!(ring.dropped(), 0, "{workload}/{engine}: ring must not drop");
        trace_records = ring.records().len() as u64;
        ring_secs.push(secs);
    }
    let ring = median(ring_secs);

    let mut jsonl_secs = Vec::new();
    for _ in 0..RUNS {
        let sink = Arc::new(JsonlSink::create(jsonl_path).expect("trace file creates"));
        let (secs, _) = drive(Some(sink));
        jsonl_secs.push(secs);
    }
    let jsonl = median(jsonl_secs);
    let jsonl_records = std::fs::read_to_string(jsonl_path)
        .map(|s| s.lines().count() as u64)
        .unwrap_or(0);
    assert!(
        jsonl_records > 0,
        "{workload}/{engine}: the jsonl runs must leave records behind"
    );
    let _ = std::fs::remove_file(jsonl_path);

    let row = |secs: f64| EngineRow {
        seconds: secs,
        firings,
        firings_per_sec: firings as f64 / secs,
    };
    println!(
        "{:<22} {:<15} {:>8} firings {:>8} records  off {:>10.0} f/s  ring {:>5.2}x  jsonl {:>5.2}x",
        workload,
        engine,
        firings,
        trace_records,
        firings as f64 / off,
        ring / off,
        jsonl / off
    );
    ObservabilityRow {
        workload: workload.into(),
        engine: engine.into(),
        firings,
        off: row(off),
        ring: row(ring),
        jsonl: row(jsonl),
        ring_overhead: ring / off,
        jsonl_overhead: jsonl / off,
        trace_records,
    }
}

/// S7: what the telemetry layer costs when you actually turn it on. The
/// same sessions run three times — tracing disabled (the default,
/// near-zero by construction), into a large in-memory [`gammaflow_gamma::RingSink`], and
/// serialised onto a JSONL file — over a dense sequential fold, a
/// 4-worker sharded wave, and a streaming windowed-sum session. Every
/// run asserts the workload self-check final, so the overhead figures
/// are for *correct* traced runs. Results go to
/// `BENCH_observability.json`.
fn s7() {
    use gammaflow_gamma::{Engine, ParEngine, Scheduling, Session, Status, TraceSink};
    use gammaflow_workloads::windowed_sum;
    use std::sync::Arc;
    banner("S7", "Observability: tracing overhead (off / ring / jsonl)");

    let jsonl_path = std::env::temp_dir()
        .join("gammaflow_s7_trace.jsonl")
        .to_string_lossy()
        .into_owned();
    let mut rows = Vec::new();

    // Dense sequential fold on the Rete matcher.
    let values: Vec<i64> = (1..=2048).collect();
    let fold = sum(&values);
    let drive = |sink: Option<Arc<dyn TraceSink>>| {
        let mut builder = Session::build(&fold.program).scheduling(Scheduling::Rete);
        if let Some(sink) = sink {
            builder = builder.trace_sink(sink);
        }
        let t = Instant::now();
        let mut session = builder
            .start(fold.initial.clone())
            .expect("program compiles");
        let wv = session.run_to_stable().expect("wave runs");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(wv.status, Status::Stable);
        let result = session.finish();
        assert_eq!(result.multiset, fold.expected, "seq_rete final diverged");
        (secs, result.stats.firings_total())
    };
    rows.push(observe_modes(fold.name, "seq_rete", &jsonl_path, &drive));

    // The same fold on the 4-worker sharded engine: tracing crosses
    // worker threads here.
    let drive = |sink: Option<Arc<dyn TraceSink>>| {
        let mut builder = Session::build(&fold.program)
            .engine(Engine::Parallel(ParEngine::ShardedRete))
            .workers(4);
        if let Some(sink) = sink {
            builder = builder.trace_sink(sink);
        }
        let t = Instant::now();
        let mut session = builder
            .start(fold.initial.clone())
            .expect("program compiles");
        let wv = session.run_to_stable().expect("wave runs");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(wv.status, Status::Stable);
        let result = session.finish_parallel();
        assert_eq!(
            result.exec.multiset, fold.expected,
            "sharded_rete final diverged"
        );
        (secs, result.exec.stats.firings_total())
    };
    rows.push(observe_modes(
        fold.name,
        "sharded_rete_w4",
        &jsonl_path,
        &drive,
    ));

    // A streaming session: many small waves, so per-wave bracketing
    // events (wave_start/injected/wave_end) weigh in too.
    let stream = windowed_sum(16, 64, 2, 42);
    let drive = |sink: Option<Arc<dyn TraceSink>>| {
        let mut builder = Session::build(&stream.program).scheduling(Scheduling::Delta);
        if let Some(sink) = sink {
            builder = builder.trace_sink(sink);
        }
        let t = Instant::now();
        let mut session = builder
            .start(stream.initial.clone())
            .expect("program compiles");
        for wave in &stream.waves {
            let _ = session.inject(wave.iter().cloned());
            let wv = session.run_to_stable().expect("wave runs");
            assert_eq!(wv.status, Status::Stable);
        }
        let secs = t.elapsed().as_secs_f64();
        let result = session.finish();
        assert_eq!(result.multiset, stream.expected, "streaming final diverged");
        (secs, result.stats.firings_total())
    };
    rows.push(observe_modes(
        &stream.name,
        "seq_delta",
        &jsonl_path,
        &drive,
    ));

    let baseline: Vec<(String, f64)> =
        read_baseline::<ObservabilityReport>("BENCH_observability.json")
            .map(|old| observability_fps_series(&old.rows))
            .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_observability.json",
        &baseline,
        &observability_fps_series(&rows),
    );

    let report = ObservabilityReport {
        bench: "observability".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_observability.json", &json).expect("write BENCH_observability.json");
    println!("wrote BENCH_observability.json");
}

// ------------------------------------------------------------------ S8 ----

/// One workload's three-way guard-dispatch comparison in BENCH_vm.json:
/// the same two-wave session driven with tree-walk guards, baseline
/// bytecode (tiering disabled), and profile-driven tiering (threshold 1,
/// so every profiled reaction re-compiles at the first wave boundary and
/// the bulk wave runs at the optimised tier).
#[derive(serde::Serialize, serde::Deserialize)]
struct VmRow {
    workload: String,
    firings: u64,
    guard_evals: u64,
    tree: EngineRow,
    vm: EngineRow,
    tiered: EngineRow,
    vm_speedup_vs_tree: f64,
    tiered_speedup_vs_tree: f64,
    tree_guard_evals_per_sec: f64,
    vm_guard_evals_per_sec: f64,
    tiered_guard_evals_per_sec: f64,
    tier_ups: u64,
    identical_final_multiset: bool,
}

/// The BENCH_vm.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct VmReport {
    bench: String,
    rows: Vec<VmRow>,
}

fn vm_fps_series(rows: &[VmRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            [
                (format!("{}/tree", r.workload), r.tree.firings_per_sec),
                (format!("{}/vm", r.workload), r.vm.firings_per_sec),
                (format!("{}/tiered", r.workload), r.tiered.firings_per_sec),
            ]
        })
        .collect()
}

/// S8: guard-dispatch cost — the `Expr` tree walk vs the baseline
/// bytecode VM vs profile-driven tiered re-compilation, on the
/// guard-heavy workloads (the sieves spend most of their matcher time
/// in guard conjuncts; the n² cross product stresses the Rete pushdown
/// chunks). Each series drives the identical two-wave schedule — an
/// eighth of the bag first, then the rest — so the tiered run crosses
/// its threshold at the first wave boundary and executes the bulk wave
/// at the optimised tier. Every run must land on the workload's
/// self-check multiset with a mode-independent firing count. Results go
/// to `BENCH_vm.json`.
fn s8() {
    use gammaflow_gamma::{GuardEvalMode, Scheduling, Selection, Session, Status};
    use gammaflow_workloads::{cross_sum, divisor_sieve, Workload};
    banner("S8", "Guard VM: tree-walk vs bytecode vs tiered re-compile");

    let workloads: Vec<Workload> = vec![primes(2_000), divisor_sieve(2_000), cross_sum(400)];
    println!(
        "{:<20} {:>9} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8}",
        "workload", "firings", "guards", "tree f/s", "vm f/s", "tiered f/s", "vm x", "tier x"
    );

    let mut rows = Vec::new();
    for w in &workloads {
        // The identical two-wave schedule for every series: enough work
        // in wave 1 to cross the threshold, the bulk in wave 2.
        let elements = w.initial.sorted_elements();
        let (head, tail) = elements.split_at((elements.len() / 8).max(1));

        let drive = |mode: GuardEvalMode, threshold: u64| -> (f64, u64, u64, u64) {
            let t = Instant::now();
            let mut session = Session::build(&w.program)
                .scheduling(Scheduling::Rete)
                .selection(Selection::Seeded(1))
                .guard_eval(mode)
                .vm_tier_threshold(threshold)
                .start(ElementBag::new())
                .expect("program compiles");
            for wave in [head, tail] {
                let _ = session.inject(wave.iter().cloned());
                let wv = session.run_to_stable().expect("wave runs");
                assert_eq!(wv.status, Status::Stable, "{}", w.name);
            }
            let secs = t.elapsed().as_secs_f64();
            let guard_evals: u64 = session.profile().rows.iter().map(|r| r.guard_evals).sum();
            let tier_ups = session.vm_tier_ups();
            let result = session.finish();
            assert_eq!(
                result.multiset, w.expected,
                "{}: final must match the self-check",
                w.name
            );
            (secs, result.stats.firings_total(), guard_evals, tier_ups)
        };

        // Median of three drives per series; the counters are identical
        // across repeats (same seed, same schedule), so keep the last.
        let series = |mode: GuardEvalMode, threshold: u64| -> (f64, u64, u64, u64) {
            let mut secs = Vec::new();
            let mut counts = (0u64, 0u64, 0u64);
            for _ in 0..3 {
                let (s, firings, guards, tier_ups) = drive(mode, threshold);
                secs.push(s);
                counts = (firings, guards, tier_ups);
            }
            secs.sort_by(f64::total_cmp);
            (secs[secs.len() / 2], counts.0, counts.1, counts.2)
        };

        let (tree_s, firings, guard_evals, tree_tier_ups) = series(GuardEvalMode::Tree, 1);
        let (vm_s, vm_firings, vm_guards, vm_tier_ups) = series(GuardEvalMode::Vm, u64::MAX);
        let (tiered_s, tiered_firings, tiered_guards, tier_ups) = series(GuardEvalMode::Vm, 1);
        assert_eq!(tree_tier_ups, 0, "{}: tree mode must never tier", w.name);
        assert_eq!(vm_tier_ups, 0, "{}: threshold MAX must never tier", w.name);
        assert!(tier_ups > 0, "{}: threshold 1 must tier up", w.name);
        assert_eq!(
            vm_firings, firings,
            "{}: firings are mode-independent",
            w.name
        );
        assert_eq!(tiered_firings, firings, "{}", w.name);
        assert_eq!(
            vm_guards, guard_evals,
            "{}: guard counters conserve",
            w.name
        );
        assert_eq!(tiered_guards, guard_evals, "{}", w.name);

        let row = |secs: f64| EngineRow {
            seconds: secs,
            firings,
            firings_per_sec: firings as f64 / secs,
        };
        let (tree, vm, tiered) = (row(tree_s), row(vm_s), row(tiered_s));
        println!(
            "{:<20} {:>9} {:>11} {:>11.0} {:>11.0} {:>11.0} {:>7.2}x {:>7.2}x",
            w.name,
            firings,
            guard_evals,
            tree.firings_per_sec,
            vm.firings_per_sec,
            tiered.firings_per_sec,
            vm.firings_per_sec / tree.firings_per_sec,
            tiered.firings_per_sec / tree.firings_per_sec,
        );
        rows.push(VmRow {
            workload: w.name.to_string(),
            firings,
            guard_evals,
            vm_speedup_vs_tree: vm.firings_per_sec / tree.firings_per_sec,
            tiered_speedup_vs_tree: tiered.firings_per_sec / tree.firings_per_sec,
            tree_guard_evals_per_sec: guard_evals as f64 / tree_s,
            vm_guard_evals_per_sec: guard_evals as f64 / vm_s,
            tiered_guard_evals_per_sec: guard_evals as f64 / tiered_s,
            tree,
            vm,
            tiered,
            tier_ups,
            identical_final_multiset: true,
        });
    }

    let baseline: Vec<(String, f64)> = read_baseline::<VmReport>("BENCH_vm.json")
        .map(|old| vm_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions("BENCH_vm.json", &baseline, &vm_fps_series(&rows));

    let report = VmReport {
        bench: "vm".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json");
}

// ------------------------------------------------------------------ S9 ----

/// One storage-operation in the replayed trace; indices point into the
/// trace's element table. `Token`/`Untoken` are the matcher-side ops:
/// admitting a candidate materialises an arity-2 beta-token key into the
/// dedup map (rete's `by_key`), consuming it removes the key.
#[derive(Clone, Copy)]
enum StorageOp {
    Insert(u32),
    Probe(u32),
    Remove(u32),
    Token(u32, u32),
    Untoken(u32, u32),
}

/// A workload-shaped storage-operation trace: the element table plus the
/// exact insert/probe/remove sequence the engine would issue against the
/// bag while running it.
struct StorageTrace {
    elems: Vec<Element>,
    ops: Vec<StorageOp>,
}

/// The guard-heavy stream's bag traffic: every arriving element is
/// inserted and count-probed (the matcher's enabledness check), then
/// joined against its `FANOUT` nearest predecessors — one beta-token
/// key materialised and dedup-probed per candidate pair, the 2-ary join
/// traffic `rete`'s `by_key` sees on the sieve workloads. The
/// one-in-six that passes the guard conjunction is consumed (its
/// candidate keys retract) and its product inserted.
fn sieve_storage_trace(n: usize) -> StorageTrace {
    const FANOUT: usize = 8;
    let mut elems: Vec<Element> = (0..n as i64).map(|v| Element::pair(v, "s9n")).collect();
    let mut ops = Vec::with_capacity(n * (FANOUT + 4));
    for i in 0..n {
        ops.push(StorageOp::Insert(i as u32));
        ops.push(StorageOp::Probe(i as u32));
        for f in 1..=FANOUT.min(i) {
            ops.push(StorageOp::Token((i - f) as u32, i as u32));
        }
        if i % 6 == 0 {
            ops.push(StorageOp::Remove(i as u32));
            for f in 1..=FANOUT.min(i) {
                ops.push(StorageOp::Untoken((i - f) as u32, i as u32));
            }
            let j = elems.len() as u32;
            elems.push(Element::pair((i / 6) as i64, "s9m"));
            ops.push(StorageOp::Insert(j));
        }
    }
    StorageTrace { elems, ops }
}

/// The streaming window's bag traffic: string-keyed readings arrive,
/// are probed, and fall out of a 1024-element sliding window. Values
/// cycle through 4096 distinct keys (hash-consing territory) while the
/// per-window tag advances, so buckets churn like a rolling stream.
fn window_storage_trace(n: usize) -> StorageTrace {
    const W: usize = 1024;
    use gammaflow_multiset::value::Value;
    use gammaflow_multiset::Tag;
    let elems: Vec<Element> = (0..n)
        .map(|i| {
            Element::new(
                Value::str(format!("reading-{:04}", i % 4096).as_str()),
                "s9w",
                Tag((i / W) as u64),
            )
        })
        .collect();
    const FANOUT: usize = 4;
    let mut ops = Vec::with_capacity(n * (FANOUT + 3));
    for i in 0..n {
        ops.push(StorageOp::Insert(i as u32));
        ops.push(StorageOp::Probe(i as u32));
        // Window joins: each reading pairs with a few spread-out
        // neighbours still inside the window.
        for f in 1..=FANOUT {
            let stride = f * (W / FANOUT);
            if i >= stride {
                ops.push(StorageOp::Token((i - stride) as u32, i as u32));
            }
        }
        if i >= W {
            ops.push(StorageOp::Remove((i - W) as u32));
            for f in 1..=FANOUT {
                let stride = f * (W / FANOUT);
                ops.push(StorageOp::Untoken((i - W) as u32, (i - W + stride) as u32));
            }
        }
    }
    StorageTrace { elems, ops }
}

/// Replay a trace under the pre-arena discipline: the bag owns full
/// elements, every operation hashes the complete `(value, label, tag)`
/// payload, every insert clones it, and beta-token keys carry cloned
/// elements into the dedup map — the storage model the interned arena
/// replaced. Returns (seconds, probe checksum).
fn replay_prearena(trace: &StorageTrace) -> (f64, u64) {
    use gammaflow_multiset::{FxHashMap, HashBag};
    let t = Instant::now();
    let mut bag: HashBag<Element> = HashBag::new();
    let mut tokens: FxHashMap<Box<[Element]>, u32> = FxHashMap::default();
    let mut sum = 0u64;
    for &op in &trace.ops {
        match op {
            StorageOp::Insert(i) => bag.insert(trace.elems[i as usize].clone()),
            StorageOp::Probe(i) => sum += bag.count(&trace.elems[i as usize]) as u64,
            StorageOp::Remove(i) => {
                bag.remove(&trace.elems[i as usize]);
            }
            StorageOp::Token(a, b) => {
                let key: Box<[Element]> = Box::new([
                    trace.elems[a as usize].clone(),
                    trace.elems[b as usize].clone(),
                ]);
                *tokens.entry(key).or_insert(0) += 1;
            }
            StorageOp::Untoken(a, b) => {
                let key = [
                    trace.elems[a as usize].clone(),
                    trace.elems[b as usize].clone(),
                ];
                tokens.remove(&key[..]);
            }
        }
    }
    sum += tokens.len() as u64;
    (t.elapsed().as_secs_f64(), std::hint::black_box(sum))
}

/// Replay the same trace under the arena discipline: one intern when an
/// element first enters (ingress); after that every operation — bag
/// update, count probe, beta-token key — moves `ElemId`s, so the hot
/// loop is integer copies, `u64` hashes, and a `u32` slot probe, with
/// the tag carried alongside the id exactly as rete tokens carry it.
/// Returns (seconds, probe checksum); the checksum must match the
/// pre-arena replay's, byte for byte.
fn replay_arena(trace: &StorageTrace) -> (f64, u64) {
    use gammaflow_multiset::{ElemId, FxHashMap, Tag};
    let t = Instant::now();
    let mut bag = ElementBag::new();
    let mut tokens: FxHashMap<Box<[ElemId]>, u32> = FxHashMap::default();
    let mut ids: Vec<Option<(ElemId, Tag)>> = vec![None; trace.elems.len()];
    let mut sum = 0u64;
    for &op in &trace.ops {
        match op {
            StorageOp::Insert(i) => {
                let e = &trace.elems[i as usize];
                let (id, _) = *ids[i as usize].get_or_insert_with(|| (ElemId::intern(e), e.tag));
                bag.insert_id(id, 1);
            }
            StorageOp::Probe(i) => {
                let (id, tag) = ids[i as usize].expect("probe follows insert");
                sum += bag.count_id(id, tag) as u64;
            }
            StorageOp::Remove(i) => {
                let (id, tag) = ids[i as usize].expect("remove follows insert");
                bag.remove_id(id, tag);
            }
            StorageOp::Token(a, b) => {
                let key: Box<[ElemId]> =
                    Box::new([ids[a as usize].unwrap().0, ids[b as usize].unwrap().0]);
                *tokens.entry(key).or_insert(0) += 1;
            }
            StorageOp::Untoken(a, b) => {
                let key = [ids[a as usize].unwrap().0, ids[b as usize].unwrap().0];
                tokens.remove(&key[..]);
            }
        }
    }
    sum += tokens.len() as u64;
    (t.elapsed().as_secs_f64(), std::hint::black_box(sum))
}

/// One (workload, element-count) cell in BENCH_storage.json: the two
/// storage disciplines replayed over the identical operation trace, plus
/// (guard-heavy stream only) full-engine throughput at that scale.
#[derive(serde::Serialize, serde::Deserialize)]
struct StorageRow {
    workload: String,
    elements: u64,
    ops: u64,
    prearena_ops_per_sec: f64,
    arena_ops_per_sec: f64,
    /// Pre-arena seconds / arena seconds on the same trace: the in-run
    /// measure of what interned columnar storage buys.
    arena_speedup: f64,
    /// Full Rete session over the guard-heavy stream at this scale
    /// (absent for the storage-only streaming rows).
    engine: Option<EngineRow>,
    arena_slots: u64,
    arena_bytes: u64,
}

/// The BENCH_storage.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct StorageReport {
    bench: String,
    rows: Vec<StorageRow>,
}

fn storage_fps_series(rows: &[StorageRow]) -> Vec<(String, f64)> {
    rows.iter()
        .flat_map(|r| {
            let mut series = vec![(
                format!("{}/{}/arena_ops", r.workload, r.elements),
                r.arena_ops_per_sec,
            )];
            if let Some(engine) = &r.engine {
                series.push((
                    format!("{}/{}/engine", r.workload, r.elements),
                    engine.firings_per_sec,
                ));
            }
            series
        })
        .collect()
}

/// S9: interned columnar storage — the arena discipline (one intern at
/// ingress, ID-keyed integer operations after) against the pre-arena
/// discipline (owned elements, full-payload hash and clone per
/// operation, preserved in-tree as `HashBag<Element>`), replayed over
/// the byte-identical workload-shaped operation trace at 10^4/10^5/10^6
/// elements. The guard-heavy stream also runs end-to-end through a Rete
/// session at each scale for the throughput curve. Both replays must
/// produce the same probe checksum — same trace, same answers, only the
/// storage discipline differs. Results go to `BENCH_storage.json`.
fn s9() {
    use gammaflow_gamma::{
        ElementSpec, Expr, GammaProgram, Pattern, ReactionSpec, Scheduling, Selection, Session,
        Status,
    };
    use gammaflow_multiset::value::{BinOp, CmpOp};
    banner(
        "S9",
        "Interned columnar storage: arena vs pre-arena on identical traces",
    );

    // The guard-heavy stream as a real program: a three-conjunct filter
    // that consumes one-in-six elements, linear in the input size.
    let div6 = ReactionSpec::new("div6")
        .replace(Pattern::pair("x", "s9n"))
        .where_(Expr::and(
            Expr::cmp(
                CmpOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("x"), Expr::int(2)),
                Expr::int(0),
            ),
            Expr::and(
                Expr::cmp(
                    CmpOp::Eq,
                    Expr::bin(BinOp::Rem, Expr::var("x"), Expr::int(3)),
                    Expr::int(0),
                ),
                Expr::cmp(CmpOp::Ge, Expr::var("x"), Expr::int(0)),
            ),
        ))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Div, Expr::var("x"), Expr::int(6)),
            "s9m",
        )]);
    let program = GammaProgram::new(vec![div6]);

    println!(
        "{:<14} {:>9} {:>9} {:>13} {:>13} {:>8} {:>12}",
        "workload", "elements", "ops", "prearena o/s", "arena o/s", "ratio", "engine f/s"
    );

    let sizes = [10_000usize, 100_000, 1_000_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        // Fewer repeats at the top size keeps the CI smoke run bounded.
        let repeats = if n >= 1_000_000 { 1 } else { 3 };
        for guard_heavy in [true, false] {
            let trace = if guard_heavy {
                sieve_storage_trace(n)
            } else {
                window_storage_trace(n)
            };
            let median = |f: &dyn Fn(&StorageTrace) -> (f64, u64)| -> (f64, u64) {
                let mut secs = Vec::new();
                let mut sum = 0u64;
                for _ in 0..repeats {
                    let (s, c) = f(&trace);
                    secs.push(s);
                    sum = c;
                }
                secs.sort_by(f64::total_cmp);
                (secs[secs.len() / 2], sum)
            };
            let (pre_s, pre_sum) = median(&replay_prearena);
            let (arena_s, arena_sum) = median(&replay_arena);
            assert_eq!(
                pre_sum, arena_sum,
                "disciplines must answer the same trace identically"
            );

            let engine = if guard_heavy {
                let initial: ElementBag = (0..n as i64).map(|v| Element::pair(v, "s9n")).collect();
                let mut secs = Vec::new();
                let mut firings = 0u64;
                for _ in 0..repeats {
                    let t = Instant::now();
                    let mut session = Session::build(&program)
                        .scheduling(Scheduling::Rete)
                        .selection(Selection::Seeded(1))
                        .start(initial.clone())
                        .expect("program compiles");
                    let wv = session.run_to_stable().expect("wave runs");
                    assert_eq!(wv.status, Status::Stable);
                    secs.push(t.elapsed().as_secs_f64());
                    firings = session.finish().stats.firings_total();
                }
                secs.sort_by(f64::total_cmp);
                let s = secs[secs.len() / 2];
                assert_eq!(firings, n as u64 / 6 + 1, "one firing per multiple of 6");
                Some(EngineRow {
                    seconds: s,
                    firings,
                    firings_per_sec: firings as f64 / s,
                })
            } else {
                None
            };

            let arena = gammaflow_multiset::arena_stats();
            let ops = trace.ops.len() as u64;
            let row = StorageRow {
                workload: if guard_heavy {
                    "sieve_stream"
                } else {
                    "window_stream"
                }
                .into(),
                elements: n as u64,
                ops,
                prearena_ops_per_sec: ops as f64 / pre_s,
                arena_ops_per_sec: ops as f64 / arena_s,
                arena_speedup: pre_s / arena_s,
                engine,
                arena_slots: arena.slots as u64,
                arena_bytes: arena.bytes as u64,
            };
            println!(
                "{:<14} {:>9} {:>9} {:>13.0} {:>13.0} {:>7.2}x {:>12}",
                row.workload,
                row.elements,
                row.ops,
                row.prearena_ops_per_sec,
                row.arena_ops_per_sec,
                row.arena_speedup,
                row.engine
                    .as_ref()
                    .map_or("-".into(), |e| format!("{:.0}", e.firings_per_sec)),
            );
            rows.push(row);
        }
    }

    let baseline: Vec<(String, f64)> = read_baseline::<StorageReport>("BENCH_storage.json")
        .map(|old| storage_fps_series(&old.rows))
        .unwrap_or_default();
    warn_fps_regressions("BENCH_storage.json", &baseline, &storage_fps_series(&rows));

    let report = StorageReport {
        bench: "storage".into(),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_storage.json", &json).expect("write BENCH_storage.json");
    println!("wrote BENCH_storage.json");
}

// ----------------------------------------------------------------- S10 ----

/// One dispatch strategy in BENCH_streaming_service.json.
#[derive(serde::Serialize, serde::Deserialize)]
struct ServiceRow {
    strategy: String,
    sessions: usize,
    waves_per_session: usize,
    elements_per_wave: usize,
    driver_threads: usize,
    total_waves: u64,
    seconds: f64,
    sessions_per_sec: f64,
    waves_per_sec: f64,
    p50_wave_us: f64,
    p99_wave_us: f64,
    pool_leases: u64,
    pool_refusals: u64,
    identical_finals: bool,
}

/// The BENCH_streaming_service.json schema.
#[derive(serde::Serialize, serde::Deserialize)]
struct ServiceReport {
    bench: String,
    /// Sessions/sec of the parked-pool strategy over the spawn-per-wave
    /// strategy (the S10 acceptance figure: must stay >= 1.5).
    parked_speedup_vs_spawn: f64,
    rows: Vec<ServiceRow>,
}

fn service_fps_series(rows: &[ServiceRow]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| (r.strategy.clone(), r.sessions_per_sec))
        .collect()
}

fn percentile_us(latencies: &mut [f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
    latencies[idx]
}

/// S10: serving thousands of concurrent small-wave sessions. The same
/// N-tenant stream (each tenant: W waves of E elements through a
/// one-reaction map program on the sharded parallel engine, 2 workers
/// per wave) is driven three ways:
///
/// * `parked_pool`    — `gammad` service, waves lease workers from the
///   process-wide parked pool (the default dispatch);
/// * `spawn_per_wave` — the same service, every wave spawns fresh
///   scoped threads (the historical behaviour);
/// * `thread_per_session` — no service: one OS thread per session for
///   its whole life, spawn-per-wave inside (the classic
///   architecture the service replaces).
///
/// Sessions/sec counts fully-finished sessions over wall time; wave
/// latency is measured per `run_next_wave` call (per inject+wave for
/// the threaded baseline). Every tenant's final multiset is checked
/// byte-identical to a standalone sequential session over the same
/// stream before any figure is recorded. Results go to
/// `BENCH_streaming_service.json`.
fn s10() {
    use gammaflow_gamma::{
        ElementSpec, Engine, EngineConfig, Expr, GammaProgram, ParEngine, Pattern, ReactionSpec,
        Session, Status, WaveDispatch, WorkerPool,
    };
    use gammaflow_multiset::value::BinOp;
    use gammaflow_service::{ServiceConfig, ServiceRuntime};
    use std::sync::Mutex;
    banner(
        "S10",
        "gammad: thousands of sessions on one parked-worker pool",
    );

    let sessions: usize = 2048;
    let waves_per_session: usize = 4;
    let elements_per_wave: usize = 4;
    let drivers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));

    let program = GammaProgram::new(vec![ReactionSpec::new("double")
        .replace(Pattern::pair("x", "s10in"))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Mul, Expr::var("x"), Expr::int(2)),
            "s10out",
        )])]);
    // Tenant `i`'s wave `w`: a disjoint value range, so every final is
    // tenant-unique and a cross-tenant mixup cannot cancel out.
    let wave_elems = |i: usize, w: usize| -> Vec<Element> {
        (0..elements_per_wave)
            .map(|j| Element::pair((i * 1_000 + w * 100 + j) as i64, "s10in"))
            .collect()
    };
    // Small-wave serving regime: one engine worker per wave (waves of a
    // few elements have no intra-wave parallelism worth paying for), so
    // the dispatch mechanism — lease a parked worker vs spawn a fresh
    // thread — is exactly what the strategies vary.
    let par_config = || EngineConfig {
        engine: Engine::Parallel(ParEngine::ShardedRete),
        workers: 1,
        ..EngineConfig::default()
    };

    // The standalone sequential reference finals (engine matrix anchor:
    // every strategy must reproduce these byte-for-byte).
    let reference: Vec<ElementBag> = (0..sessions)
        .map(|i| {
            let mut session = Session::build(&program)
                .start(ElementBag::new())
                .expect("program compiles");
            for w in 0..waves_per_session {
                let _ = session.inject(wave_elems(i, w));
                let wv = session.run_to_stable().expect("wave runs");
                assert_eq!(wv.status, Status::Stable);
            }
            session.finish().multiset
        })
        .collect();

    let total_waves = (sessions * waves_per_session) as u64;
    let mut rows: Vec<ServiceRow> = Vec::new();

    // The two service-driven strategies differ only in wave dispatch.
    for (strategy, dispatch) in [
        ("parked_pool", WaveDispatch::default()),
        ("spawn_per_wave", WaveDispatch::SpawnPerWave),
    ] {
        let svc = ServiceRuntime::new(ServiceConfig {
            dispatch,
            ..ServiceConfig::default()
        })
        .expect("no trace file configured");
        for i in 0..sessions {
            svc.register(&format!("t{i}"), &program, par_config(), ElementBag::new())
                .expect("tenant registers");
        }
        let (leases0, refusals0) = WorkerPool::global().lease_stats();
        let latencies = Mutex::new(Vec::with_capacity(total_waves as usize));
        let t0 = Instant::now();
        for w in 0..waves_per_session {
            for i in 0..sessions {
                let _ = svc.inject(&format!("t{i}"), wave_elems(i, w)).unwrap();
            }
            std::thread::scope(|scope| {
                for _ in 0..drivers {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let t = Instant::now();
                            match svc.run_next_wave().expect("wave runs") {
                                Some(report) => {
                                    assert_eq!(report.wave.status, Status::Stable);
                                    local.push(t.elapsed().as_secs_f64() * 1e6);
                                }
                                None => break,
                            }
                        }
                        latencies.lock().unwrap().extend(local);
                    });
                }
            });
        }
        let seconds = t0.elapsed().as_secs_f64();
        let (leases1, refusals1) = WorkerPool::global().lease_stats();

        let mut identical = true;
        for (i, expect) in reference.iter().enumerate() {
            let finals = svc.finish(&format!("t{i}")).expect("tenant finishes");
            identical &= finals.multiset == *expect;
        }
        assert!(identical, "{strategy}: finals must match standalone");

        let mut lat = latencies.into_inner().unwrap();
        assert_eq!(lat.len() as u64, total_waves, "every wave measured");
        rows.push(ServiceRow {
            strategy: strategy.into(),
            sessions,
            waves_per_session,
            elements_per_wave,
            driver_threads: drivers,
            total_waves,
            seconds,
            sessions_per_sec: sessions as f64 / seconds,
            waves_per_sec: total_waves as f64 / seconds,
            p50_wave_us: percentile_us(&mut lat, 0.50),
            p99_wave_us: percentile_us(&mut lat, 0.99),
            pool_leases: leases1 - leases0,
            pool_refusals: refusals1 - refusals0,
            identical_finals: identical,
        });
    }

    // The classic architecture: one OS thread owns each session for its
    // whole life; no multiplexing, spawn-per-wave inside.
    {
        let latencies = Mutex::new(Vec::with_capacity(total_waves as usize));
        let identical = std::sync::atomic::AtomicBool::new(true);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for i in 0..sessions {
                let latencies = &latencies;
                let identical = &identical;
                let program = &program;
                let reference = &reference;
                scope.spawn(move || {
                    let mut session = Session::build(program)
                        .config(par_config())
                        .wave_dispatch(WaveDispatch::SpawnPerWave)
                        .start(ElementBag::new())
                        .expect("program compiles");
                    let mut local = Vec::with_capacity(waves_per_session);
                    for w in 0..waves_per_session {
                        let t = Instant::now();
                        let _ = session.inject(wave_elems(i, w));
                        let wv = session.run_to_stable().expect("wave runs");
                        assert_eq!(wv.status, Status::Stable);
                        local.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    if session.finish().multiset != reference[i] {
                        identical.store(false, std::sync::atomic::Ordering::Relaxed);
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }
        });
        let seconds = t0.elapsed().as_secs_f64();
        let ok = identical.load(std::sync::atomic::Ordering::Relaxed);
        assert!(ok, "thread_per_session: finals must match standalone");
        let mut lat = latencies.into_inner().unwrap();
        rows.push(ServiceRow {
            strategy: "thread_per_session".into(),
            sessions,
            waves_per_session,
            elements_per_wave,
            driver_threads: sessions,
            total_waves,
            seconds,
            sessions_per_sec: sessions as f64 / seconds,
            waves_per_sec: total_waves as f64 / seconds,
            p50_wave_us: percentile_us(&mut lat, 0.50),
            p99_wave_us: percentile_us(&mut lat, 0.99),
            pool_leases: 0,
            pool_refusals: 0,
            identical_finals: ok,
        });
    }

    println!(
        "{:<20} {:>8} {:>7} {:>10} {:>12} {:>10} {:>10} {:>8} {:>8}",
        "strategy",
        "sessions",
        "drivers",
        "sess/s",
        "waves/s",
        "p50 us",
        "p99 us",
        "leases",
        "refused"
    );
    for r in &rows {
        println!(
            "{:<20} {:>8} {:>7} {:>10.0} {:>12.0} {:>10.1} {:>10.1} {:>8} {:>8}",
            r.strategy,
            r.sessions,
            r.driver_threads,
            r.sessions_per_sec,
            r.waves_per_sec,
            r.p50_wave_us,
            r.p99_wave_us,
            r.pool_leases,
            r.pool_refusals
        );
    }

    let parked = rows[0].sessions_per_sec;
    let spawn = rows[1].sessions_per_sec;
    let speedup = parked / spawn;
    println!("parked pool vs spawn-per-wave: {speedup:.2}x sessions/sec");
    if speedup < 1.5 {
        println!("WARNING: parked-pool speedup below the 1.5x acceptance bar");
    }

    let baseline: Vec<(String, f64)> =
        read_baseline::<ServiceReport>("BENCH_streaming_service.json")
            .map(|old| service_fps_series(&old.rows))
            .unwrap_or_default();
    warn_fps_regressions(
        "BENCH_streaming_service.json",
        &baseline,
        &service_fps_series(&rows),
    );

    let report = ServiceReport {
        bench: "streaming_service".into(),
        parked_speedup_vs_spawn: speedup,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    std::fs::write("BENCH_streaming_service.json", &json)
        .expect("write BENCH_streaming_service.json");
    println!("wrote BENCH_streaming_service.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));
    let t0 = Instant::now();
    if want("E1") {
        e1();
    }
    if want("E2") {
        e2();
    }
    if want("E3") {
        e3();
    }
    if want("E4") {
        e4();
    }
    if want("E5") {
        e5();
    }
    if want("E6") {
        e6();
    }
    if want("M1") {
        m1();
    }
    if want("P1") {
        p1();
    }
    if want("P2") {
        p2();
    }
    if want("P3") {
        p3();
    }
    if want("P4") {
        p4();
    }
    if want("P5") {
        p5();
    }
    if want("S1") {
        s1();
    }
    if want("S2") {
        s2();
    }
    if want("S3") {
        s3();
    }
    if want("S4") {
        s4();
    }
    if want("S5") {
        s5();
    }
    if want("S6") {
        s6();
    }
    if want("S7") {
        s7();
    }
    if want("S8") {
        s8();
    }
    if want("S9") {
        s9();
    }
    if want("S10") {
        s10();
    }
    println!(
        "\nharness complete in {:.1?} — record release-mode output in EXPERIMENTS.md",
        t0.elapsed()
    );
}
