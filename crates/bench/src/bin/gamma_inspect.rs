//! `gamma-inspect`: pretty-print a JSONL trace produced by the gamma
//! telemetry layer (`GAMMAFLOW_TRACE=path` or a
//! [`JsonlSink`](gammaflow_gamma::JsonlSink)).
//!
//! ```sh
//! GAMMAFLOW_TRACE=/tmp/trace.jsonl cargo run --example streaming_session
//! cargo run -p gammaflow-bench --bin gamma-inspect -- /tmp/trace.jsonl
//! cargo run -p gammaflow-bench --bin gamma-inspect -- /tmp/trace.jsonl --top 5
//! cargo run -p gammaflow-bench --bin gamma-inspect -- /tmp/gammad.jsonl --tenant t7
//! ```
//!
//! Prints four views of the stream: an event-kind census, a one-line
//! arena census (per-label element traffic — the id-resolution pressure
//! on each label's payload arena), a per-worker timeline (one row per
//! worker per wave, in global-sequence order), and a top-N per-reaction
//! table aggregated from the `firing` events.
//!
//! A multi-tenant `gammad` trace interleaves every tenant's records in
//! one file, each line carrying a `tenant` key ahead of the plain
//! record. `--tenant <id>` restricts every view to that stream;
//! without it, a tenant census is printed above the event census.

use gammaflow_gamma::{TraceEvent, TraceRecord, MAIN_WORKER};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// The service-side tenant tag spliced ahead of each record by
/// `gammad`'s trace sink; absent on single-session traces.
#[derive(serde::Deserialize)]
struct TenantTag {
    tenant: Option<String>,
}

/// Aggregated per-reaction figures from the stream's `firing` events.
#[derive(Default)]
struct ReactionAgg {
    fired: u64,
    consumed: u64,
    produced: u64,
    stolen: u64,
    match_ns: u64,
}

/// One worker's per-wave activity row.
#[derive(Default)]
struct WorkerWave {
    events: u64,
    firings: u64,
    published: u64,
    processed: u64,
    first_seq: u64,
    last_seq: u64,
}

fn worker_name(w: i64) -> String {
    if w == MAIN_WORKER {
        "main".to_string()
    } else {
        format!("w{w}")
    }
}

fn run(path: &str, top: usize, tenant: Option<&str>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records: Vec<TraceRecord> = Vec::new();
    let mut tenants: BTreeMap<String, u64> = BTreeMap::new();
    let mut skipped = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let tag: Option<String> = serde_json::from_str::<TenantTag>(line)
            .ok()
            .and_then(|t| t.tenant);
        if let Some(t) = &tag {
            *tenants.entry(t.clone()).or_default() += 1;
        }
        if let Some(want) = tenant {
            if tag.as_deref() != Some(want) {
                skipped += 1;
                continue;
            }
        }
        let rec: TraceRecord = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not a trace record: {e}", i + 1))?;
        records.push(rec);
    }
    if records.is_empty() {
        if let Some(want) = tenant {
            let known: Vec<&str> = tenants.keys().map(String::as_str).collect();
            return Err(format!(
                "{path}: no records for tenant {want:?} (tenants in file: {})",
                if known.is_empty() {
                    "none".to_string()
                } else {
                    known.join(", ")
                }
            ));
        }
        return Err(format!("{path}: no trace records"));
    }
    match tenant {
        Some(want) => println!("tenant filter {want:?}: {skipped} other-stream records skipped"),
        None if !tenants.is_empty() => {
            println!("tenant census ({} streams):", tenants.len());
            for (t, n) in &tenants {
                println!("  {t:<20} {n:>8}");
            }
        }
        None => {}
    }

    // Census: event kinds in first-seen order.
    let mut census: Vec<(&'static str, u64)> = Vec::new();
    for r in &records {
        match census.iter_mut().find(|(k, _)| *k == r.kind()) {
            Some((_, n)) => *n += 1,
            None => census.push((r.kind(), 1)),
        }
    }
    println!("{path}: {} records", records.len());
    for (kind, n) in &census {
        println!("  {kind:<20} {n:>8}");
    }

    // Arena census: per-label element traffic in the firing stream.
    // Every consumed/produced reference is an id resolution against that
    // label's payload arena, so this is the stream's arena pressure.
    let mut label_refs: BTreeMap<&str, u64> = BTreeMap::new();
    let (mut consumed_total, mut produced_total) = (0u64, 0u64);
    for r in &records {
        if let TraceEvent::Firing {
            consumed, produced, ..
        } = &r.event
        {
            consumed_total += consumed.len() as u64;
            produced_total += produced.len() as u64;
            for l in consumed.iter().chain(produced) {
                *label_refs.entry(l.as_str()).or_default() += 1;
            }
        }
    }
    let mut busiest: Vec<(&str, u64)> = label_refs.iter().map(|(l, n)| (*l, *n)).collect();
    busiest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    busiest.truncate(3);
    let busiest: Vec<String> = busiest.iter().map(|(l, n)| format!("{l} {n}")).collect();
    println!(
        "arena census: {} labels, {} element refs (consumed {}, produced {}); busiest: {}",
        label_refs.len(),
        consumed_total + produced_total,
        consumed_total,
        produced_total,
        if busiest.is_empty() {
            "-".to_string()
        } else {
            busiest.join(", ")
        }
    );

    // Per-worker timeline: one row per (wave, worker), ordered by the
    // first global sequence number seen in that cell.
    let mut timeline: BTreeMap<(u64, i64), WorkerWave> = BTreeMap::new();
    for r in &records {
        let cell = timeline.entry((r.wave, r.worker)).or_default();
        if cell.events == 0 {
            cell.first_seq = r.seq;
        }
        cell.events += 1;
        cell.last_seq = r.seq;
        match &r.event {
            TraceEvent::Firing { .. } => cell.firings += 1,
            TraceEvent::DeltaPublished { .. } => cell.published += 1,
            TraceEvent::DeltaProcessed { .. } => cell.processed += 1,
            _ => {}
        }
    }
    println!("\nper-worker timeline (wave, worker, seq span):");
    println!(
        "  {:>5} {:>6} {:>13} {:>8} {:>8} {:>10} {:>10}",
        "wave", "worker", "seq", "events", "firings", "published", "processed"
    );
    for ((wave, worker), cell) in &timeline {
        println!(
            "  {:>5} {:>6} {:>6}..{:<5} {:>8} {:>8} {:>10} {:>10}",
            wave,
            worker_name(*worker),
            cell.first_seq,
            cell.last_seq,
            cell.events,
            cell.firings,
            cell.published,
            cell.processed
        );
    }

    // Top-N reactions by fired count.
    let mut reactions: BTreeMap<String, ReactionAgg> = BTreeMap::new();
    for r in &records {
        if let TraceEvent::Firing {
            name,
            consumed,
            produced,
            match_ns,
            stolen,
            ..
        } = &r.event
        {
            let agg = reactions.entry(name.clone()).or_default();
            agg.fired += 1;
            agg.consumed += consumed.len() as u64;
            agg.produced += produced.len() as u64;
            agg.stolen += u64::from(*stolen);
            agg.match_ns += match_ns;
        }
    }
    let mut ranked: Vec<(String, ReactionAgg)> = reactions.into_iter().collect();
    ranked.sort_by(|a, b| b.1.fired.cmp(&a.1.fired).then(a.0.cmp(&b.0)));
    ranked.truncate(top);
    println!("\ntop {} reactions by firings:", ranked.len());
    println!(
        "  {:<16} {:>8} {:>9} {:>9} {:>7} {:>12}",
        "reaction", "fired", "consumed", "produced", "stolen", "match_ns"
    );
    for (name, agg) in &ranked {
        println!(
            "  {:<16} {:>8} {:>9} {:>9} {:>7} {:>12}",
            name, agg.fired, agg.consumed, agg.produced, agg.stolen, agg.match_ns
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut top = 10usize;
    let mut tenant: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                top = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--top needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--tenant" => {
                tenant = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--tenant needs a tenant id");
                    std::process::exit(2);
                }));
                i += 2;
            }
            a if path.is_none() => {
                path = Some(a.to_string());
                i += 1;
            }
            a => {
                eprintln!("unexpected argument: {a}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: gamma-inspect <trace.jsonl> [--top N] [--tenant ID]");
        return ExitCode::from(2);
    };
    match run(&path, top, tenant.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gamma-inspect: {e}");
            ExitCode::FAILURE
        }
    }
}
