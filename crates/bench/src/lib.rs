//! Shared fixtures for the gammaflow benchmark suite and the experiment
//! harness (`cargo run -p gammaflow-bench --bin harness`).

#![warn(missing_docs)]

/// Paper-figure builders used across benches.
pub mod fixtures {
    use gammaflow_dataflow::graph::{DataflowGraph, GraphBuilder, OutPort};
    use gammaflow_dataflow::node::{Imm, NodeKind};
    use gammaflow_multiset::value::{BinOp, CmpOp};

    /// The paper's Fig. 1 with observable `m`.
    pub fn fig1() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        b.build().unwrap()
    }

    /// The paper's Fig. 2, result observable on `xout`.
    pub fn fig2(y0: i64, z0: i64, x0: i64) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let y = b.constant_named(y0, "y");
        let z = b.constant_named(z0, "z");
        let x = b.constant_named(x0, "x");
        let r11 = b.add_named(NodeKind::IncTag, "R11");
        let r12 = b.add_named(NodeKind::IncTag, "R12");
        let r13 = b.add_named(NodeKind::IncTag, "R13");
        let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let r15 = b.add_named(NodeKind::Steer, "R15");
        let r16 = b.add_named(NodeKind::Steer, "R16");
        let r17 = b.add_named(NodeKind::Steer, "R17");
        let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
        let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R19");
        let out = b.output("result");
        b.connect_labelled(y, r11, 0, "A1");
        b.connect_labelled(z, r12, 0, "B1");
        b.connect_labelled(x, r13, 0, "C1");
        b.connect_labelled(r11, r15, 0, "A12");
        b.connect_labelled(r12, r14, 0, "B12");
        b.connect_labelled(r12, r16, 0, "B13");
        b.connect_labelled(r13, r17, 0, "C12");
        b.connect_labelled(r14, r15, 1, "B14");
        b.connect_labelled(r14, r16, 1, "B15");
        b.connect_labelled(r14, r17, 1, "B16");
        b.connect_full(r15, OutPort::True, r11, 0, Some("A11"));
        b.connect_full(r15, OutPort::True, r19, 0, Some("A13"));
        b.connect_full(r16, OutPort::True, r18, 0, Some("B17"));
        b.connect_full(r17, OutPort::True, r19, 1, Some("C13"));
        b.connect_labelled(r18, r12, 0, "B11");
        b.connect_labelled(r19, r13, 0, "C11");
        b.connect_full(r17, OutPort::False, out, 0, Some("xout"));
        b.build().unwrap()
    }

    /// `groups` independent copies of Example 1's expression
    /// `(a+b) - (c*d)`, one output each — the granularity-experiment
    /// family (wide Example 1).
    pub fn example1_family(groups: usize) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        for g in 0..groups {
            let base = (g as i64) * 4;
            let a = b.constant(base + 1);
            let c = b.constant(base + 5);
            let k = b.constant(base + 3);
            let j = b.constant(base + 2);
            let add = b.add_named(NodeKind::Arith(BinOp::Add, None), format!("add{g}"));
            let mul = b.add_named(NodeKind::Arith(BinOp::Mul, None), format!("mul{g}"));
            let sub = b.add_named(NodeKind::Arith(BinOp::Sub, None), format!("sub{g}"));
            let out = b.output(&format!("m{g}_sink"));
            b.connect_labelled(a, add, 0, &format!("A{g}"));
            b.connect_labelled(c, add, 1, &format!("B{g}"));
            b.connect_labelled(k, mul, 0, &format!("C{g}"));
            b.connect_labelled(j, mul, 1, &format!("D{g}"));
            b.connect_labelled(add, sub, 0, &format!("S{g}"));
            b.connect_labelled(mul, sub, 1, &format!("P{g}"));
            b.connect_labelled(sub, out, 0, &format!("m{g}"));
        }
        b.build().unwrap()
    }

    /// Labels that must survive fusion for [`example1_family`]: the root
    /// and output labels of every group.
    pub fn example1_family_protected(groups: usize) -> Vec<gammaflow_multiset::Symbol> {
        let mut out = Vec::new();
        for g in 0..groups {
            for p in ["A", "B", "C", "D", "m"] {
                out.push(gammaflow_multiset::Symbol::intern(&format!("{p}{g}")));
            }
        }
        out
    }
}

/// Committed-baseline regression detection shared by the harness's
/// `S1`/`S2`/`S3`/`S4` steps: compare freshly measured `firings_per_sec`
/// series against the figures committed in a `BENCH_*.json` file and
/// report every series that dropped below the noise tolerance.
pub mod baseline {
    /// Run-to-run timing jitter allowance before a drop counts as a
    /// regression: warnings below ~10% would mostly report noise and
    /// train readers to ignore them.
    pub const FPS_REGRESSION_TOLERANCE: f64 = 0.90;

    /// One detected regression: the `workload/engine` series key, the
    /// fresh figure, and the committed figure it fell short of.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        /// Series key, conventionally `workload/engine`.
        pub key: String,
        /// Freshly measured firings/sec.
        pub current: f64,
        /// Committed baseline firings/sec.
        pub baseline: f64,
    }

    /// Pure comparison core: every series present in both lists whose
    /// fresh figure dropped below `baseline * tolerance`. Series missing
    /// from either side are ignored (new workloads, renamed rows).
    pub fn fps_regressions(
        baseline: &[(String, f64)],
        current: &[(String, f64)],
        tolerance: f64,
    ) -> Vec<Regression> {
        current
            .iter()
            .filter_map(|(key, new_fps)| {
                let (_, old_fps) = baseline.iter().find(|(k, _)| k == key)?;
                (*new_fps < old_fps * tolerance).then(|| Regression {
                    key: key.clone(),
                    current: *new_fps,
                    baseline: *old_fps,
                })
            })
            .collect()
    }

    /// Read a committed baseline report, tolerating a missing or
    /// unparseable file (first run, format change).
    pub fn read_baseline<T: for<'de> serde::Deserialize<'de>>(path: &str) -> Option<T> {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|s| serde_json::from_str::<T>(&s).ok())
    }

    /// Compare fresh `firings_per_sec` figures against the committed
    /// baseline (read *before* it is overwritten) and print a warning per
    /// regressed series. Skipped on CI: the committed baselines were
    /// measured on a developer machine, and shared CI runners are slower
    /// and noisier than any tolerance band, so the comparison would cry
    /// wolf there — CI still exercises the harness and its
    /// byte-identical-finals assertions.
    pub fn warn_fps_regressions(path: &str, baseline: &[(String, f64)], current: &[(String, f64)]) {
        if std::env::var_os("CI").is_some() {
            println!("(CI run: skipping firings/sec baseline comparison against {path})");
            return;
        }
        let regressions = fps_regressions(baseline, current, FPS_REGRESSION_TOLERANCE);
        for r in &regressions {
            println!(
                "WARNING: {} regressed to {:.0} firings/sec \
                 (committed baseline in {path}: {:.0})",
                r.key, r.current, r.baseline
            );
        }
        if regressions.is_empty() && !baseline.is_empty() {
            println!("no firings/sec regressions against committed {path}");
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn series(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
            pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
        }

        #[test]
        fn detects_only_drops_past_tolerance() {
            let committed = series(&[
                ("sieve/rete", 10_000.0),
                ("sieve/delta", 5_000.0),
                ("triangles/rete", 100.0),
            ]);
            let fresh = series(&[
                ("sieve/rete", 8_000.0),     // 20% drop: regression
                ("sieve/delta", 4_700.0),    // 6% drop: within tolerance
                ("triangles/rete", 120.0),   // improvement
                ("cross_sum/rete", 9_999.0), // new series: ignored
            ]);
            let found = fps_regressions(&committed, &fresh, FPS_REGRESSION_TOLERANCE);
            assert_eq!(found.len(), 1);
            assert_eq!(found[0].key, "sieve/rete");
            assert_eq!(found[0].current, 8_000.0);
            assert_eq!(found[0].baseline, 10_000.0);
        }

        #[test]
        fn empty_baseline_reports_nothing() {
            let fresh = series(&[("sieve/rete", 1.0)]);
            assert!(fps_regressions(&[], &fresh, FPS_REGRESSION_TOLERANCE).is_empty());
        }

        #[test]
        fn multi_row_parallel_series_reports_every_regressed_cell() {
            // BENCH_parallel.json-style keys: workload × worker count ×
            // engine. Every regressed cell must be reported, across rows.
            let committed = series(&[
                ("loops/w1/probe_retry", 80_000.0),
                ("loops/w1/sharded_rete", 400_000.0),
                ("loops/w8/probe_retry", 75_000.0),
                ("loops/w8/sharded_rete", 380_000.0),
                ("sum/w8/probe_retry", 30_000.0),
                ("sum/w8/sharded_rete", 10_000.0),
            ]);
            let fresh = series(&[
                ("loops/w1/probe_retry", 79_000.0),   // within tolerance
                ("loops/w1/sharded_rete", 200_000.0), // regression
                ("loops/w8/probe_retry", 76_000.0),   // improvement
                ("loops/w8/sharded_rete", 100_000.0), // regression
                ("sum/w8/probe_retry", 31_000.0),
                ("sum/w8/sharded_rete", 9_500.0), // within tolerance
                ("sum/w16/sharded_rete", 1.0),    // new cell: ignored
            ]);
            let found = fps_regressions(&committed, &fresh, FPS_REGRESSION_TOLERANCE);
            let keys: Vec<&str> = found.iter().map(|r| r.key.as_str()).collect();
            assert_eq!(keys, vec!["loops/w1/sharded_rete", "loops/w8/sharded_rete"]);
        }
    }
}
