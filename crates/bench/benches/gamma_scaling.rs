//! Experiment P3: Gamma interpreter scaling on classic workloads.
//!
//! Sequential vs parallel (1/2/4 workers) on the prime sieve and pairwise
//! sum. Expectation per the cited parallel Gamma implementations: the
//! associative sum scales with workers; the sieve's single shared bucket
//! limits speedup (matching is the bottleneck, not firing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gammaflow_gamma::{run_parallel, ParConfig, SeqInterpreter};
use gammaflow_workloads::{primes, sum};

fn bench_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_sum_512");
    group.sample_size(20);
    let w = sum(&(1..=512).collect::<Vec<_>>());
    group.bench_function("seq", |b| {
        b.iter(|| {
            SeqInterpreter::with_seed(&w.program, w.initial.clone(), 1)
                .run()
                .unwrap()
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("par", workers), &workers, |b, &workers| {
            b.iter(|| {
                run_parallel(
                    &w.program,
                    w.initial.clone(),
                    &ParConfig {
                        workers,
                        seed: 1,
                        ..ParConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_primes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gamma_primes_128");
    group.sample_size(10);
    let w = primes(128);
    group.bench_function("seq", |b| {
        b.iter(|| {
            SeqInterpreter::with_seed(&w.program, w.initial.clone(), 1)
                .run()
                .unwrap()
        })
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("par", workers), &workers, |b, &workers| {
            b.iter(|| {
                run_parallel(
                    &w.program,
                    w.initial.clone(),
                    &ParConfig {
                        workers,
                        seed: 1,
                        ..ParConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_selection_modes(c: &mut Criterion) {
    // Deterministic vs seeded selection overhead on the same workload.
    use gammaflow_gamma::{ExecConfig, Selection};
    let mut group = c.benchmark_group("gamma_selection_mode_sum_256");
    group.sample_size(20);
    let w = sum(&(1..=256).collect::<Vec<_>>());
    for (name, selection) in [
        ("deterministic", Selection::Deterministic),
        ("seeded", Selection::Seeded(1)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                SeqInterpreter::with_config(
                    &w.program,
                    w.initial.clone(),
                    ExecConfig {
                        selection,
                        ..ExecConfig::default()
                    },
                )
                .unwrap()
                .run()
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sum, bench_primes, bench_selection_modes);
criterion_main!(benches);
