//! Multiset substrate microbenchmarks: the raw operations under both
//! interpreters (bag updates, indexed lookups, sharded claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gammaflow_multiset::{Element, ElementBag, HashBag, ShardedBag};

fn bench_hashbag(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashbag");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_remove_10k", |b| {
        b.iter(|| {
            let mut bag = HashBag::new();
            for i in 0..10_000i64 {
                bag.insert(i % 997);
            }
            for i in 0..10_000i64 {
                bag.remove(&(i % 997));
            }
            assert!(bag.is_empty());
            bag
        })
    });
    let a: HashBag<i64> = (0..5_000).map(|i| i % 701).collect();
    let b2: HashBag<i64> = (0..5_000).map(|i| i % 997).collect();
    group.bench_function("union_5k_5k", |b| b.iter(|| a.union(&b2)));
    group.bench_function("difference_5k_5k", |b| b.iter(|| a.difference(&b2)));
    group.bench_function("is_subset", |b| b.iter(|| a.is_subset(&b2)));
    group.finish();
}

fn bench_elementbag(c: &mut Criterion) {
    let mut group = c.benchmark_group("elementbag");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("insert_10k_mixed_keys", |b| {
        b.iter(|| {
            let mut bag = ElementBag::new();
            for i in 0..10_000i64 {
                bag.insert(Element::new(i, "l", (i % 64) as u64));
            }
            bag
        })
    });
    let bag: ElementBag = (0..10_000i64)
        .map(|i| Element::new(i, format!("l{}", i % 32).as_str(), (i % 64) as u64))
        .collect();
    group.bench_function("project_half", |b| {
        b.iter(|| bag.project(|l| l.index() % 2 == 0))
    });
    group.bench_function("bucket_probe", |b| {
        let label = gammaflow_multiset::Symbol::intern("l3");
        b.iter(|| {
            bag.bucket(label, gammaflow_multiset::Tag(3))
                .map(|x| x.len())
        })
    });
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_bag");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("claim_storm_10k", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let bag = ShardedBag::new(64);
                    bag.insert_all((0..10_000i64).map(|i| Element::new(i, "t", 0u64)));
                    std::thread::scope(|scope| {
                        for w in 0..threads {
                            let bag = &bag;
                            scope.spawn(move || {
                                for i in (w..10_000).step_by(threads) {
                                    let e = Element::new(i as i64, "t", 0u64);
                                    let out = Element::new(i as i64, "done", 0u64);
                                    let claimed =
                                        bag.claim_and_replace(&[e], std::slice::from_ref(&out));
                                    assert!(claimed);
                                }
                            });
                        }
                    });
                    assert_eq!(bag.len(), 10_000);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hashbag, bench_elementbag, bench_sharded);
criterion_main!(benches);
