//! Matching-engine microbenchmarks: the cost of one `find_match` probe
//! under different multiset shapes — the quantity that dominates any Gamma
//! implementation (and the reason the `(label, tag)` index exists).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gammaflow_gamma::compiled::CompiledReaction;
use gammaflow_gamma::spec::{ElementSpec, Pattern, ReactionSpec};
use gammaflow_gamma::Expr;
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag};

/// Distinct labels: the indexed best case — every probe is O(1) bucket hits.
fn bench_distinct_labels(c: &mut Criterion) {
    let r = CompiledReaction::compile(
        &ReactionSpec::new("r")
            .replace(Pattern::pair("a", "x"))
            .replace(Pattern::pair("b", "y"))
            .by(vec![ElementSpec::pair(
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                "z",
            )]),
    )
    .unwrap();
    let mut group = c.benchmark_group("match_distinct_labels");
    for size in [100usize, 10_000] {
        let mut bag = ElementBag::new();
        for i in 0..size as i64 {
            bag.insert(Element::pair(i, "x"));
            bag.insert(Element::pair(i, "y"));
        }
        group.bench_with_input(BenchmarkId::from_parameter(size), &bag, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap().unwrap())
        });
    }
    group.finish();
}

/// One shared label (sieve-shaped): the index degenerates and candidate
/// enumeration dominates.
fn bench_single_bucket(c: &mut Criterion) {
    let r = CompiledReaction::compile(
        &ReactionSpec::new("r")
            .replace(Pattern::pair("a", "n"))
            .replace(Pattern::pair("b", "n"))
            .where_(Expr::cmp(
                CmpOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("a"), Expr::var("b")),
                Expr::int(0),
            ))
            .by(vec![ElementSpec::pair(Expr::var("b"), "n")]),
    )
    .unwrap();
    let mut group = c.benchmark_group("match_single_bucket_where");
    group.sample_size(20);
    for size in [100usize, 1000] {
        // Consecutive odd numbers: few divisibility pairs, so the matcher
        // really searches.
        let bag: ElementBag = (0..size as i64)
            .map(|i| Element::pair(2 * i + 3, "n"))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &bag, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap())
        });
    }
    group.finish();
}

/// Tag-spread matching: one label, many tags, shared tag variable — the
/// waiting–matching-store shape.
fn bench_tag_spread(c: &mut Criterion) {
    let r = CompiledReaction::compile(
        &ReactionSpec::new("r")
            .replace(Pattern::tagged("a", "l", "v"))
            .replace(Pattern::tagged("b", "r", "v"))
            .by(vec![ElementSpec::tagged(
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                "o",
                "v",
            )]),
    )
    .unwrap();
    let mut group = c.benchmark_group("match_tag_spread");
    for tags in [16usize, 1024] {
        let mut bag = ElementBag::new();
        for t in 0..tags as u64 {
            bag.insert(Element::new(1, "l", t));
            // Only the last tag has a right-hand partner: worst case scan.
        }
        bag.insert(Element::new(2, "r", tags as u64 - 1));
        group.bench_with_input(BenchmarkId::from_parameter(tags), &bag, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap().unwrap())
        });
    }
    group.finish();
}

/// Arity sweep on indexed labels.
fn bench_arity(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_arity");
    for arity in [1usize, 2, 4] {
        let mut spec = ReactionSpec::new("r");
        for i in 0..arity {
            spec = spec.replace(Pattern::pair(&format!("v{i}"), format!("l{i}").as_str()));
        }
        let r = CompiledReaction::compile(&spec.by(vec![])).unwrap();
        let mut bag = ElementBag::new();
        for i in 0..arity {
            for v in 0..1000i64 {
                bag.insert(Element::pair(v, format!("l{i}").as_str()));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(arity), &bag, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap().unwrap())
        });
    }
    group.finish();
}

/// Indexed vs naive (flat-scan) matching on the same reaction and
/// multiset — the data-structure ablation behind harness table P3.
fn bench_naive_vs_indexed(c: &mut Criterion) {
    use gammaflow_gamma::NaiveBag;
    let r = CompiledReaction::compile(
        &ReactionSpec::new("r")
            .replace(Pattern::pair("a", "x"))
            .replace(Pattern::pair("b", "y"))
            .by(vec![ElementSpec::pair(
                Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
                "z",
            )]),
    )
    .unwrap();
    let mut group = c.benchmark_group("match_naive_vs_indexed");
    for size in [100usize, 2_000] {
        let elems: Vec<Element> = (0..size as i64)
            .flat_map(|i| [Element::pair(i, "x"), Element::pair(i, "y")])
            .collect();
        let indexed: ElementBag = elems.iter().cloned().collect();
        let naive = NaiveBag::from_iter(elems);
        group.bench_with_input(BenchmarkId::new("indexed", size), &indexed, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", size), &naive, |b, bag| {
            b.iter(|| r.find_match(0, bag, None).unwrap().unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distinct_labels,
    bench_single_bucket,
    bench_tag_spread,
    bench_arity,
    bench_naive_vs_indexed
);
criterion_main!(benches);
