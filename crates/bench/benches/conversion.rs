//! Experiment P4: throughput of the conversion algorithms.
//!
//! Measures Algorithm 1 (dataflow → Gamma) and Algorithm 2's stitching
//! (Gamma → dataflow) over random DAGs of growing size, plus both on the
//! paper's own figures. The paper gives no conversion-cost numbers; the
//! expectation (DESIGN.md E/P table) is near-linear growth in nodes+edges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gammaflow_bench::fixtures;
use gammaflow_core::{dataflow_to_gamma, gamma_to_dataflow};
use gammaflow_workloads::{random_dag, DagParams};

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_df_to_gamma");
    for nodes in [100usize, 1_000, 10_000] {
        // width*layers + roots + sinks ≈ nodes.
        let width = (nodes / 20).max(1);
        let params = DagParams {
            roots: width.max(2),
            layers: 18,
            width,
            range: 1000,
        };
        let dag = random_dag(42, &params);
        let n = dag.graph.node_count();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &dag.graph, |b, g| {
            b.iter(|| dataflow_to_gamma(g).unwrap())
        });
    }
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_gamma_to_df");
    for nodes in [100usize, 1_000, 10_000] {
        let width = (nodes / 20).max(1);
        let params = DagParams {
            roots: width.max(2),
            layers: 18,
            width,
            range: 1000,
        };
        let dag = random_dag(42, &params);
        let conv = dataflow_to_gamma(&dag.graph).unwrap();
        let n = dag.graph.node_count();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(conv.program, conv.initial),
            |b, (prog, init)| b.iter(|| gamma_to_dataflow(prog, init).unwrap()),
        );
    }
    group.finish();
}

fn bench_paper_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    let f1 = fixtures::fig1();
    group.bench_function("fig1_to_gamma", |b| {
        b.iter(|| dataflow_to_gamma(&f1).unwrap())
    });
    let f2 = fixtures::fig2(5, 3, 10);
    group.bench_function("fig2_to_gamma", |b| {
        b.iter(|| dataflow_to_gamma(&f2).unwrap())
    });
    let conv = dataflow_to_gamma(&f2).unwrap();
    group.bench_function("fig2_roundtrip_back", |b| {
        b.iter(|| gamma_to_dataflow(&conv.program, &conv.initial).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm2,
    bench_paper_figures
);
criterion_main!(benches);
