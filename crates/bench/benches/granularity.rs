//! Experiment P1: the §III-A3 granularity trade-off, measured.
//!
//! The paper predicts that fusing reactions "decreases the opportunity to
//! explore the parallelism" while reducing matching work. We run the
//! Example-1 family (w independent `(a+b)-(c*d)` groups) at several widths,
//! fused and unfused, on the sequential and parallel interpreters.
//! Expected shape: fused wins sequentially (3× fewer matches); unfused
//! exposes 2w-way parallelism (vs w-way fused) in maximal-step terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gammaflow_bench::fixtures::{example1_family, example1_family_protected};
use gammaflow_core::{dataflow_to_gamma, fuse_all};
use gammaflow_gamma::{run_parallel, ParConfig, SeqInterpreter};

fn bench_granularity(c: &mut Criterion) {
    for groups in [4usize, 16, 64] {
        let mut group = c.benchmark_group(format!("granularity_w{groups}"));
        group.sample_size(20);
        let g = example1_family(groups);
        let conv = dataflow_to_gamma(&g).unwrap();
        let (fused, report) = fuse_all(&conv.program, &example1_family_protected(groups));
        assert_eq!(report.after, groups, "each group fuses to one reaction");

        group.bench_function("unfused_seq", |b| {
            b.iter(|| {
                SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 1)
                    .run()
                    .unwrap()
            })
        });
        group.bench_function("fused_seq", |b| {
            b.iter(|| {
                SeqInterpreter::with_seed(&fused, conv.initial.clone(), 1)
                    .run()
                    .unwrap()
            })
        });
        for (name, prog) in [("unfused", &conv.program), ("fused", &fused)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}_par"), 4),
                prog,
                |b, prog| {
                    b.iter(|| {
                        run_parallel(
                            prog,
                            conv.initial.clone(),
                            &ParConfig {
                                workers: 4,
                                seed: 1,
                                ..ParConfig::default()
                            },
                        )
                        .unwrap()
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
