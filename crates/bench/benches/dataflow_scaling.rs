//! Experiment P2: dataflow engine PE scaling.
//!
//! Wide independent graphs (known parallelism) and multi-loop graphs on
//! 1/2/4/8 PEs, against the sequential engine and the serial deep chain
//! (the expected non-scaling baseline). Per §II-A's "each core is a
//! virtual PE", wide graphs should speed up with PEs; the deep chain must
//! not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gammaflow_dataflow::engine::SeqEngine;
use gammaflow_dataflow::engine_par::{run_parallel, ParEngineConfig};
use gammaflow_workloads::{deep_chain, parallel_loops, wide_pairs};

fn bench_wide(c: &mut Criterion) {
    let mut group = c.benchmark_group("df_wide_1024_pairs");
    group.sample_size(20);
    let dag = wide_pairs(7, 1024);
    group.bench_function("seq", |b| {
        b.iter(|| SeqEngine::new(&dag.graph).run().unwrap())
    });
    for pes in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("par", pes), &pes, |b, &pes| {
            b.iter(|| run_parallel(&dag.graph, &ParEngineConfig::with_pes(pes)).unwrap())
        });
    }
    group.finish();
}

fn bench_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("df_loops_8x100");
    group.sample_size(10);
    let w = parallel_loops(8, 3, 100, 1);
    group.bench_function("seq", |b| {
        b.iter(|| SeqEngine::new(&w.graph).run().unwrap())
    });
    for pes in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("par", pes), &pes, |b, &pes| {
            b.iter(|| run_parallel(&w.graph, &ParEngineConfig::with_pes(pes)).unwrap())
        });
    }
    group.finish();
}

fn bench_serial_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("df_serial_chain_2000");
    group.sample_size(20);
    let dag = deep_chain(2000, 0);
    group.bench_function("seq", |b| {
        b.iter(|| SeqEngine::new(&dag.graph).run().unwrap())
    });
    for pes in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("par", pes), &pes, |b, &pes| {
            b.iter(|| run_parallel(&dag.graph, &ParEngineConfig::with_pes(pes)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wide, bench_loops, bench_serial_baseline);
criterion_main!(benches);
