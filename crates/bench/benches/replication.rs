//! Experiment P5: cost of the Fig. 4 multiset mapping.
//!
//! `map_multiset` greedily matches the replace-list and instantiates one
//! subgraph per match; the paper notes an efficient mapper is "beyond the
//! scope of this work". Expectation: near-linear in |M| for the
//! plain 2-ary reaction, superlinear once a `where` condition forces the
//! matcher to search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gammaflow_core::map_multiset;
use gammaflow_lang::parse_reaction;
use gammaflow_multiset::{Element, ElementBag};

fn bench_plain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mapping_plain_pairs");
    let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
    for size in [64usize, 256, 1024] {
        let m: ElementBag = (1..=size as i64).map(|v| Element::pair(v, "n")).collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &m, |b, m| {
            b.iter(|| {
                let mapping = map_multiset(&r, m, usize::MAX).unwrap();
                assert_eq!(mapping.instances, size / 2);
                mapping
            })
        });
    }
    group.finish();
}

fn bench_conditioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mapping_where_condition");
    group.sample_size(15);
    // Condition x > y forces orientation search per match.
    let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x-y,'d'] where x > y").unwrap();
    for size in [64usize, 256] {
        let m: ElementBag = (1..=size as i64).map(|v| Element::pair(v, "n")).collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &m, |b, m| {
            b.iter(|| map_multiset(&r, m, usize::MAX).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plain, bench_conditioned);
criterion_main!(benches);
