//! Rescan vs delta scheduling on the primes-sieve and loop-heavy
//! workloads (`crates/workloads`): the criterion view of the comparison
//! recorded by `harness -- S1` in `BENCH_scheduling.json`.
//!
//! The loop family is the scheduling showcase — hundreds of reactions,
//! a handful enabled at any instant, so rescanning pays for the whole
//! program after every firing while the delta worklist re-searches only
//! the fired reaction's successors. The single-reaction sieve bounds the
//! scheduler's overhead from below (there is nothing to skip).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gammaflow_core::dataflow_to_gamma;
use gammaflow_gamma::{ExecConfig, GammaProgram, Scheduling, Selection, SeqInterpreter, Status};
use gammaflow_multiset::ElementBag;
use gammaflow_workloads::{parallel_loops, primes};

fn run(
    program: &GammaProgram,
    initial: &ElementBag,
    selection: Selection,
    scheduling: Scheduling,
) -> ElementBag {
    let result = SeqInterpreter::with_config(
        program,
        initial.clone(),
        ExecConfig {
            selection,
            scheduling,
            ..ExecConfig::default()
        },
    )
    .expect("program compiles")
    .run()
    .expect("run succeeds");
    assert_eq!(result.status, Status::Stable);
    result.multiset
}

fn bench_modes(
    c: &mut Criterion,
    group_name: &str,
    program: &GammaProgram,
    initial: &ElementBag,
    selection: Selection,
) {
    // Sanity outside the timing loop: both engines reach the same stable
    // multiset on every benchmarked workload.
    let rescan_final = run(program, initial, selection, Scheduling::Rescan);
    let delta_final = run(program, initial, selection, Scheduling::Delta);
    assert_eq!(
        rescan_final, delta_final,
        "{group_name}: engines must agree byte-for-byte"
    );

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (mode, scheduling) in [("rescan", Scheduling::Rescan), ("delta", Scheduling::Delta)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode),
            &scheduling,
            |b, &scheduling| b.iter(|| run(program, initial, selection, scheduling)),
        );
    }
    group.finish();
}

fn bench_loop_heavy(c: &mut Criterion) {
    let w = parallel_loops(6, 3, 60, 5);
    let conv = dataflow_to_gamma(&w.graph).expect("loop graph converts");
    bench_modes(
        c,
        "sched_loops_6x60",
        &conv.program,
        &conv.initial,
        Selection::Deterministic,
    );
}

fn bench_primes_sieve(c: &mut Criterion) {
    let w = primes(600);
    bench_modes(
        c,
        "sched_primes_600",
        &w.program,
        &w.initial,
        Selection::Seeded(1),
    );
}

criterion_group!(benches, bench_loop_heavy, bench_primes_sieve);
criterion_main!(benches);
