//! Mini imperative (von Neumann) frontend.
//!
//! The paper derives its dataflow graphs from C-like source snippets
//! (§III-A1); this crate makes that derivation executable. [`compile`]
//! turns programs like
//!
//! ```text
//! int x = 1; int y = 5; int k = 3; int j = 2;
//! int m;
//! m = (x + y) - (k * j);
//! output m;
//! ```
//!
//! into [`DataflowGraph`]s — straight-line code by value numbering with
//! immediate fusion, `for` loops into the paper's Fig. 2 inctag/steer
//! pattern, `if`/`else` into the §II-A steer-and-merge pattern (branch
//! constants gated through the enclosing condition chain), with a static
//! *tag epoch* analysis that rejects programs whose tokens could never
//! tag-match at runtime (see [`codegen`] docs).
//!
//! Deliberate limits, documented in DESIGN.md: a single `int` type, no
//! nested loops (those need TALM-style call tags, beyond the paper's node
//! set), and loop/if conditions must be comparisons.
//!
//! [`DataflowGraph`]: gammaflow_dataflow::graph::DataflowGraph

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod parser;

pub use ast::{Expr, Program, Stmt};
pub use codegen::{compile, compile_program, CompileError};
pub use parser::{parse, FrontendError};
