//! Lexer + parser for the mini imperative language.
//!
//! A compact hand-rolled scanner/parser pair; the grammar is C-flavoured:
//!
//! ```text
//! program  := stmt*
//! stmt     := 'int' IDENT ('=' expr)? ';'
//!           | IDENT '=' expr ';'
//!           | 'for' '(' assign ';' expr ';' update ')' block_or_stmt
//!           | 'if' '(' expr ')' block_or_stmt ('else' block_or_stmt)?
//!           | 'output' IDENT ';'
//! update   := IDENT '--' | IDENT '++' | assign
//! expr     := cmp ; cmp := add (CMPOP add)? ; add := mul (('+'|'-') mul)*
//! mul      := unary (('*'|'/'|'%') unary)* ; unary := '-' unary | primary
//! primary  := INT | IDENT | '(' expr ')'
//! ```

use crate::ast::{Expr, Program, Stmt};
use gammaflow_multiset::value::{BinOp, CmpOp};
use std::fmt;

/// Parse errors with 1-based position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// Description.
    pub msg: String,
    /// Line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}
impl std::error::Error for FrontendError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Int(i64),
    Ident(String),
    KwInt,
    KwFor,
    KwIf,
    KwElse,
    KwOutput,
    Assign,
    Semi,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(x) => write!(f, "integer `{x}`"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::KwInt => write!(f, "`int`"),
            Tok::KwFor => write!(f, "`for`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::KwOutput => write!(f, "`output`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::PlusPlus => write!(f, "`++`"),
            Tok::MinusMinus => write!(f, "`--`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, u32, u32)>, FrontendError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);
    while i < b.len() {
        let c = b[i] as char;
        let sc = col;
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '+' if i + 1 < b.len() && b[i + 1] == b'+' => {
                out.push((Tok::PlusPlus, line, sc));
                i += 2;
                col += 2;
            }
            '-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                out.push((Tok::MinusMinus, line, sc));
                i += 2;
                col += 2;
            }
            '=' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push((Tok::EqEq, line, sc));
                i += 2;
                col += 2;
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push((Tok::NotEq, line, sc));
                i += 2;
                col += 2;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push((Tok::Le, line, sc));
                i += 2;
                col += 2;
            }
            '>' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push((Tok::Ge, line, sc));
                i += 2;
                col += 2;
            }
            '+' => {
                out.push((Tok::Plus, line, sc));
                i += 1;
                col += 1;
            }
            '-' => {
                out.push((Tok::Minus, line, sc));
                i += 1;
                col += 1;
            }
            '*' => {
                out.push((Tok::Star, line, sc));
                i += 1;
                col += 1;
            }
            '/' => {
                out.push((Tok::Slash, line, sc));
                i += 1;
                col += 1;
            }
            '%' => {
                out.push((Tok::Percent, line, sc));
                i += 1;
                col += 1;
            }
            '=' => {
                out.push((Tok::Assign, line, sc));
                i += 1;
                col += 1;
            }
            ';' => {
                out.push((Tok::Semi, line, sc));
                i += 1;
                col += 1;
            }
            '(' => {
                out.push((Tok::LParen, line, sc));
                i += 1;
                col += 1;
            }
            ')' => {
                out.push((Tok::RParen, line, sc));
                i += 1;
                col += 1;
            }
            '{' => {
                out.push((Tok::LBrace, line, sc));
                i += 1;
                col += 1;
            }
            '}' => {
                out.push((Tok::RBrace, line, sc));
                i += 1;
                col += 1;
            }
            '<' => {
                out.push((Tok::Lt, line, sc));
                i += 1;
                col += 1;
            }
            '>' => {
                out.push((Tok::Gt, line, sc));
                i += 1;
                col += 1;
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = std::str::from_utf8(&b[i..j]).unwrap();
                let v = text.parse().map_err(|_| FrontendError {
                    msg: format!("integer `{text}` out of range"),
                    line,
                    col: sc,
                })?;
                out.push((Tok::Int(v), line, sc));
                col += (j - i) as u32;
                i = j;
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut j = i;
                while j < b.len() && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let w = std::str::from_utf8(&b[i..j]).unwrap();
                let tok = match w {
                    "int" => Tok::KwInt,
                    "for" => Tok::KwFor,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "output" => Tok::KwOutput,
                    _ => Tok::Ident(w.to_string()),
                };
                out.push((tok, line, sc));
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(FrontendError {
                    msg: format!("unexpected character `{other}`"),
                    line,
                    col: sc,
                })
            }
        }
    }
    out.push((Tok::Eof, line, col));
    Ok(out)
}

/// Recursion ceiling for expression and statement nesting.
const MAX_DEPTH: u32 = 128;

struct P {
    toks: Vec<(Tok, u32, u32)>,
    pos: usize,
    depth: u32,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, FrontendError> {
        let (_, line, col) = self.toks[self.pos];
        Err(FrontendError {
            msg: msg.into(),
            line,
            col,
        })
    }

    fn expect(&mut self, want: Tok) -> Result<(), FrontendError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return self.err("statements too deeply nested");
        }
        let r = self.stmt_inner();
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, FrontendError> {
        match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                let name = self.ident()?;
                let init = if matches!(self.peek(), Tok::Assign) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Decl { name, init })
            }
            Tok::KwOutput => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Output { name })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = Box::new(self.assign_no_semi()?);
                self.expect(Tok::Semi)?;
                let cond = self.expr()?;
                if !matches!(cond, Expr::Cmp(..)) {
                    return self.err("for-condition must be a comparison");
                }
                self.expect(Tok::Semi)?;
                let update = Box::new(self.update()?);
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                if !matches!(cond, Expr::Cmp(..)) {
                    return self.err("if-condition must be a comparison");
                }
                self.expect(Tok::RParen)?;
                let then_branch = self.block_or_stmt()?;
                let else_branch = if matches!(self.peek(), Tok::KwElse) {
                    self.bump();
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            Tok::Ident(_) => {
                let s = self.assign_no_semi()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn block_or_stmt(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        if matches!(self.peek(), Tok::LBrace) {
            self.bump();
            let mut body = Vec::new();
            while !matches!(self.peek(), Tok::RBrace) {
                if matches!(self.peek(), Tok::Eof) {
                    return self.err("unterminated `{` block");
                }
                body.push(self.stmt()?);
            }
            self.bump();
            Ok(body)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn assign_no_semi(&mut self) -> Result<Stmt, FrontendError> {
        let name = self.ident()?;
        self.expect(Tok::Assign)?;
        let expr = self.expr()?;
        Ok(Stmt::Assign { name, expr })
    }

    /// `i--`, `i++`, or a plain assignment.
    fn update(&mut self) -> Result<Stmt, FrontendError> {
        let name = self.ident()?;
        match self.peek() {
            Tok::MinusMinus => {
                self.bump();
                Ok(Stmt::Assign {
                    name: name.clone(),
                    expr: Expr::Bin(
                        BinOp::Sub,
                        Box::new(Expr::Var(name)),
                        Box::new(Expr::Int(1)),
                    ),
                })
            }
            Tok::PlusPlus => {
                self.bump();
                Ok(Stmt::Assign {
                    name: name.clone(),
                    expr: Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Var(name)),
                        Box::new(Expr::Int(1)),
                    ),
                })
            }
            Tok::Assign => {
                self.bump();
                let expr = self.expr()?;
                Ok(Stmt::Assign { name, expr })
            }
            other => self.err(format!("expected `--`, `++` or `=`, found {other}")),
        }
    }

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return self.err("expression too deeply nested");
        }
        let r = self.expr_inner();
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return self.err("expression too deeply nested");
        }
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, FrontendError> {
        if matches!(self.peek(), Tok::Minus) {
            self.bump();
            return match self.unary()? {
                Expr::Int(x) => Ok(Expr::Int(-x)),
                e => Ok(Expr::Neg(Box::new(e))),
            };
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        match self.bump() {
            Tok::Int(x) => Ok(Expr::Int(x)),
            Tok::Ident(v) => Ok(Expr::Var(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

/// Parse a program.
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let mut p = P {
        toks: lex(src)?,
        pos: 0,
        depth: 0,
    };
    let mut stmts = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        stmts.push(p.stmt()?);
    }
    Ok(Program { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example1_source() {
        let p = parse("int x = 1; int y = 5; int k = 3; int j = 2; int m; m = (x + y) - (k * j);")
            .unwrap();
        assert_eq!(p.stmts.len(), 6);
        assert!(matches!(&p.stmts[4], Stmt::Decl { name, init: None } if name == "m"));
        match &p.stmts[5] {
            Stmt::Assign { name, expr } => {
                assert_eq!(name, "m");
                assert_eq!(expr.to_string(), "((x + y) - (k * j))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_example2_loop() {
        let p = parse("for (i = z; i > 0; i--) x = x + y;").unwrap();
        match &p.stmts[0] {
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                assert!(matches!(&**init, Stmt::Assign { name, .. } if name == "i"));
                assert_eq!(cond.to_string(), "(i > 0)");
                assert!(
                    matches!(&**update, Stmt::Assign { name, expr } if name == "i" && expr.to_string() == "(i - 1)")
                );
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_braced_body_and_output() {
        let p = parse("for (i = 3; i > 0; i--) { x = x + 1; y = y * 2; } output x;").unwrap();
        assert_eq!(p.stmts.len(), 2);
        match &p.stmts[0] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&p.stmts[1], Stmt::Output { name } if name == "x"));
    }

    #[test]
    fn parses_if_else() {
        let p = parse("int x = 1; if (x > 0) { x = x + 1; } else { x = x - 1; }").unwrap();
        match &p.stmts[1] {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                assert_eq!(cond.to_string(), "(x > 0)");
                assert_eq!(then_branch.len(), 1);
                assert_eq!(else_branch.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_without_else() {
        let p = parse("int x = 1; if (x == 1) x = 9;").unwrap();
        match &p.stmts[1] {
            Stmt::If { else_branch, .. } => assert!(else_branch.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_comparison_condition_rejected() {
        let err = parse("for (i = 3; i; i--) x = x + 1;").unwrap_err();
        assert!(err.msg.contains("comparison"));
    }

    #[test]
    fn reports_positions() {
        let err = parse("int x = $;").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 9);
    }

    #[test]
    fn negative_literals_fold() {
        let p = parse("int a = -5;").unwrap();
        assert!(matches!(
            &p.stmts[0],
            Stmt::Decl {
                init: Some(Expr::Int(-5)),
                ..
            }
        ));
    }
}
