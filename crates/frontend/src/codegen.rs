//! Dataflow code generation for the mini imperative language.
//!
//! Straight-line code compiles by simple value numbering: each variable
//! maps to the `(node, port)` currently producing it; literals fold into
//! immediates whenever they are an operand of a binary node (that is how
//! Example 2's `i - 1` and `i > 0` become single nodes, as in the paper's
//! Fig. 2).
//!
//! `for` loops compile to the paper's Fig. 2 pattern. For every variable
//! that is *live in the loop* — referenced in the condition, body, update,
//! **or after the loop** — the generator emits:
//!
//! * an **inctag** node merging the initial definition and the loop-back
//!   edge (the paper's `A1`/`A11` merge),
//! * a **steer** node whose control comes from the compiled condition
//!   (evaluated on inctag outputs, exactly as R14 reads `B12`),
//! * a loop-back edge from the body's final definition (or the steer's
//!   true port for loop-invariant variables like `y`),
//! * and the **false port** as the variable's definition after the loop.
//!
//! Every outer variable referenced after a loop must travel *through* the
//! loop: a token left outside would keep tag 0 while the loop exit carries
//! a dynamic tag, so they could never fire together. The generator tracks a
//! static *tag epoch* per definition and rejects programs that would mix
//! epochs (e.g. a fresh constant combined with a loop exit), turning a
//! would-be runtime deadlock into a compile error.

use crate::ast::{Expr, Program, Stmt};
use crate::parser::FrontendError;
use gammaflow_dataflow::graph::{DataflowGraph, GraphBuilder, NodeId, OutPort};
use gammaflow_dataflow::node::{Imm, NodeKind};
use gammaflow_multiset::value::BinOp;
use gammaflow_multiset::FxHashMap;
use std::fmt;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Syntax error from the parser.
    Parse(FrontendError),
    /// Use of an undeclared variable.
    Undeclared(String),
    /// Use of a declared-but-never-assigned variable.
    Uninitialised(String),
    /// Nested loops need TALM-style call tags, which the paper's node set
    /// does not include.
    NestedLoop,
    /// A standalone constant inside a loop body (constants fire once at tag
    /// 0 and can never feed later iterations). Use it as an operand so it
    /// becomes an immediate instead.
    ConstInLoop(String),
    /// Two operands would carry different iteration tags at runtime.
    TagMismatch {
        /// Rendered description of the mixing site.
        site: String,
    },
    /// The final graph failed structural validation.
    Graph(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Undeclared(v) => write!(f, "use of undeclared variable `{v}`"),
            CompileError::Uninitialised(v) => write!(f, "variable `{v}` read before assignment"),
            CompileError::NestedLoop => {
                write!(f, "nested loops are not supported (single-level tags)")
            }
            CompileError::ConstInLoop(v) => write!(
                f,
                "standalone constant `{v}` inside a loop body cannot be tag-matched"
            ),
            CompileError::TagMismatch { site } => write!(
                f,
                "operands at `{site}` would carry different iteration tags at runtime"
            ),
            CompileError::Graph(e) => write!(f, "generated graph invalid: {e}"),
        }
    }
}
impl std::error::Error for CompileError {}

impl From<FrontendError> for CompileError {
    fn from(e: FrontendError) -> Self {
        CompileError::Parse(e)
    }
}

/// A value definition: the producing node/ports plus a static tag epoch.
///
/// Usually one source; after an `if` join a variable has one source per
/// branch — consumers connect to *all* of them (a merge port: exactly one
/// token arrives per tag, from whichever branch ran).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Def {
    sources: Vec<(NodeId, OutPort)>,
    epoch: u32,
}

impl Def {
    fn single(node: NodeId, port: OutPort, epoch: u32) -> Def {
        Def {
            sources: vec![(node, port)],
            epoch,
        }
    }

    /// Join two branch definitions (same epoch by construction).
    fn merge(a: &Def, b: &Def) -> Def {
        debug_assert_eq!(a.epoch, b.epoch);
        let mut sources = a.sources.clone();
        for s in &b.sources {
            if !sources.contains(s) {
                sources.push(*s);
            }
        }
        Def {
            sources,
            epoch: a.epoch,
        }
    }
}

struct Codegen {
    b: GraphBuilder,
    env: FxHashMap<String, Option<Def>>, // None = declared, not yet assigned
    epoch: u32,
    /// Monotone source of never-matching epochs for post-loop constants.
    fresh_epoch: u32,
    in_loop: bool,
    seen_loop: bool,
    /// Statement indices (top level) whose for-init was hoisted to program
    /// start — see [`compile_program`].
    hoisted_inits: Vec<usize>,
    /// Index of the top-level statement currently being compiled.
    current_stmt: usize,
    /// Stack of enclosing `if` branches: condition definition, branch
    /// port, branch epoch (outermost first). Constants minted inside a
    /// branch must be *gated* through the whole steer chain — an ungated
    /// constant would emit its token whether or not the branches run, and
    /// gating by only the innermost condition strands tokens whenever an
    /// outer branch is skipped.
    branch_gates: Vec<(Def, OutPort, u32)>,
}

/// Try to evaluate an expression to a compile-time integer.
fn const_fold(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(x) => Some(*x),
        Expr::Var(_) => None,
        Expr::Neg(a) => const_fold(a).map(i64::wrapping_neg),
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_fold(a)?, const_fold(b)?);
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                _ => return None,
            })
        }
        Expr::Cmp(..) => None,
    }
}

/// Variables *read* by a statement (assignment targets excluded, output
/// operands included).
fn reads_of(stmt: &Stmt, out: &mut Vec<String>) {
    let add_expr = |e: &Expr, out: &mut Vec<String>| {
        for v in e.vars() {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        }
    };
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                add_expr(e, out);
            }
        }
        Stmt::Assign { expr, .. } => add_expr(expr, out),
        Stmt::Output { name } => {
            if !out.iter().any(|x| x == name) {
                out.push(name.clone());
            }
        }
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            reads_of(init, out);
            add_expr(cond, out);
            reads_of(update, out);
            for s in body {
                reads_of(s, out);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            add_expr(cond, out);
            for s in then_branch.iter().chain(else_branch) {
                reads_of(s, out);
            }
        }
    }
}

impl Codegen {
    fn def_of(&self, name: &str) -> Result<Def, CompileError> {
        match self.env.get(name) {
            None => Err(CompileError::Undeclared(name.to_string())),
            Some(None) => Err(CompileError::Uninitialised(name.to_string())),
            Some(Some(d)) => Ok(d.clone()),
        }
    }

    fn check_epochs(&self, a: &Def, b: &Def, site: &Expr) -> Result<u32, CompileError> {
        if a.epoch != b.epoch {
            return Err(CompileError::TagMismatch {
                site: site.to_string(),
            });
        }
        Ok(a.epoch)
    }

    fn constant(&mut self, value: i64, hint: &str) -> Result<Def, CompileError> {
        if self.in_loop {
            return Err(CompileError::ConstInLoop(hint.to_string()));
        }
        if !self.branch_gates.is_empty() {
            // Gate the constant through the whole chain of enclosing
            // branch conditions, outermost first; untaken branches shunt
            // the token out an unconnected steer port, dropping it.
            let node = self.b.constant(value);
            let mut cur = Def::single(node, OutPort::True, 0);
            for (ctl, port, epoch) in self.branch_gates.clone() {
                let st = self.b.add_named(NodeKind::Steer, format!("gate_{hint}"));
                self.connect_from(&cur, st, 0);
                self.connect_from(&ctl, st, 1);
                cur = Def::single(st, port, epoch);
            }
            return Ok(cur);
        }
        let epoch = if self.seen_loop {
            // A constant minted after a loop can only combine with other
            // post-loop constants from the same expression epoch — give it
            // a unique one so mixing with loop exits is caught statically.
            self.fresh_epoch += 1;
            u32::MAX - self.fresh_epoch
        } else {
            0
        };
        let node = self.b.constant(value);
        Ok(Def::single(node, OutPort::True, epoch))
    }

    fn expr(&mut self, e: &Expr) -> Result<Def, CompileError> {
        if let Some(v) = const_fold(e) {
            return self.constant(v, &e.to_string());
        }
        match e {
            Expr::Int(_) => unreachable!("handled by const_fold"),
            Expr::Var(v) => self.def_of(v),
            Expr::Neg(a) => {
                let ad = self.expr(a)?;
                let n = self
                    .b
                    .add(NodeKind::Un(gammaflow_multiset::value::UnOp::Neg));
                self.connect_from(&ad, n, 0);
                Ok(Def::single(n, OutPort::True, ad.epoch))
            }
            Expr::Bin(op, a, b) => {
                // Immediate fusion: paper-style `x - 1` single nodes.
                if let Some(bi) = const_fold(b) {
                    let ad = self.expr(a)?;
                    let n = self.b.add(NodeKind::Arith(*op, Some(Imm::right(bi))));
                    self.connect_from(&ad, n, 0);
                    return Ok(Def::single(n, OutPort::True, ad.epoch));
                }
                if let Some(ai) = const_fold(a) {
                    let bd = self.expr(b)?;
                    let n = self.b.add(NodeKind::Arith(*op, Some(Imm::left(ai))));
                    self.connect_from(&bd, n, 0);
                    return Ok(Def::single(n, OutPort::True, bd.epoch));
                }
                let ad = self.expr(a)?;
                let bd = self.expr(b)?;
                let epoch = self.check_epochs(&ad, &bd, e)?;
                let n = self.b.add(NodeKind::Arith(*op, None));
                self.connect_from(&ad, n, 0);
                self.connect_from(&bd, n, 1);
                Ok(Def::single(n, OutPort::True, epoch))
            }
            Expr::Cmp(op, a, b) => {
                if let Some(bi) = const_fold(b) {
                    let ad = self.expr(a)?;
                    let n = self.b.add(NodeKind::Cmp(*op, Some(Imm::right(bi))));
                    self.connect_from(&ad, n, 0);
                    return Ok(Def::single(n, OutPort::True, ad.epoch));
                }
                if let Some(ai) = const_fold(a) {
                    let bd = self.expr(b)?;
                    let n = self.b.add(NodeKind::Cmp(*op, Some(Imm::left(ai))));
                    self.connect_from(&bd, n, 0);
                    return Ok(Def::single(n, OutPort::True, bd.epoch));
                }
                let ad = self.expr(a)?;
                let bd = self.expr(b)?;
                let epoch = self.check_epochs(&ad, &bd, e)?;
                let n = self.b.add(NodeKind::Cmp(*op, None));
                self.connect_from(&ad, n, 0);
                self.connect_from(&bd, n, 1);
                Ok(Def::single(n, OutPort::True, epoch))
            }
        }
    }

    fn connect_from(&mut self, d: &Def, dst: NodeId, port: usize) {
        for &(node, out_port) in &d.sources {
            self.b.connect_full(node, out_port, dst, port, None);
        }
    }

    fn stmt(&mut self, s: &Stmt, after: &[Stmt]) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { name, init } => {
                let def = match init {
                    None => None,
                    Some(e) => Some(self.expr(e)?),
                };
                self.env.insert(name.clone(), def);
                Ok(())
            }
            Stmt::Assign { name, expr } => {
                if !self.env.contains_key(name) {
                    return Err(CompileError::Undeclared(name.clone()));
                }
                let def = self.expr(expr)?;
                self.env.insert(name.clone(), Some(def));
                Ok(())
            }
            Stmt::Output { name } => {
                let def = self.def_of(name)?;
                let sink = self.b.output(&format!("{name}_sink"));
                if let [(node, port)] = def.sources[..] {
                    self.b.connect_full(node, port, sink, 0, Some(name));
                } else {
                    // After an `if` join the variable has one source per
                    // branch. Funnel them through an identity node so the
                    // observable edge keeps a single stable label whichever
                    // branch ran.
                    let join = self.b.add_named(
                        NodeKind::Arith(BinOp::Add, Some(Imm::right(0))),
                        format!("{name}_join"),
                    );
                    self.connect_from(&def, join, 0);
                    self.b.connect_labelled(join, sink, 0, name);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => self.for_loop(init, cond, update, body, after),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => self.if_stmt(cond, then_branch, else_branch),
        }
    }

    /// Compile `if (cond) { then } else { else }` into the paper's §II-A
    /// steer pattern: every variable either branch touches flows through a
    /// steer gated by the condition; branch-final definitions merge at the
    /// join (one source per branch).
    fn if_stmt(
        &mut self,
        cond: &Expr,
        then_branch: &[Stmt],
        else_branch: &[Stmt],
    ) -> Result<(), CompileError> {
        // Variables the branches read or assign (branch-local declarations
        // are scoped out, like loop bodies).
        let mut branch_declared: Vec<&str> = Vec::new();
        for s in then_branch.iter().chain(else_branch) {
            if let Stmt::Decl { name, .. } = s {
                branch_declared.push(name);
            }
        }
        let mut touched_names: Vec<String> = Vec::new();
        for s in then_branch.iter().chain(else_branch) {
            touched(s, &mut touched_names);
        }
        let steered: Vec<String> = touched_names
            .into_iter()
            .filter(|v| !branch_declared.iter().any(|d| d == v))
            .filter(|v| matches!(self.env.get(v), Some(Some(_))))
            .collect();

        // Entry definitions must share an epoch (the condition and data
        // tokens must tag-match).
        let mut entry: Vec<(String, Def)> = Vec::with_capacity(steered.len());
        for v in &steered {
            entry.push((v.clone(), self.def_of(v)?));
        }
        if let Some(((_, first), rest)) = entry.split_first() {
            for (v, d) in rest {
                if d.epoch != first.epoch {
                    return Err(CompileError::TagMismatch {
                        site: format!("if entry for `{v}`"),
                    });
                }
            }
        }
        let epoch = entry
            .first()
            .map(|(_, d)| d.epoch)
            .unwrap_or(if self.in_loop { self.epoch } else { 0 });

        let ctl = self.expr(cond)?;
        let mut steer: FxHashMap<String, NodeId> = FxHashMap::default();
        for (v, d) in &entry {
            let st = self.b.add_named(NodeKind::Steer, format!("ifsteer_{v}"));
            self.connect_from(d, st, 0);
            self.connect_from(&ctl, st, 1);
            steer.insert(v.clone(), st);
        }

        // Compile each branch against its steer port; collect final defs.
        let pre_env = self.env.clone();
        let branch_env = |cg: &mut Codegen,
                          branch: &[Stmt],
                          port: OutPort|
         -> Result<FxHashMap<String, Option<Def>>, CompileError> {
            cg.env = pre_env.clone();
            cg.branch_gates.push((ctl.clone(), port, epoch));
            for v in &steered {
                cg.env
                    .insert(v.clone(), Some(Def::single(steer[v], port, epoch)));
            }
            for s in branch {
                cg.stmt(s, &[])?;
            }
            cg.branch_gates.pop();
            Ok(std::mem::take(&mut cg.env))
        };
        let then_env = branch_env(self, then_branch, OutPort::True)?;
        let else_env = branch_env(self, else_branch, OutPort::False)?;

        // Join. Steered variables merge their branch-final defs; variables
        // with no entry definition join only when *both* branches assigned
        // them (otherwise the untaken path yields no token and a later read
        // stays a compile-time `Uninitialised` error rather than a runtime
        // deadlock).
        let mut assigned: Vec<String> = Vec::new();
        for st in then_branch.iter().chain(else_branch) {
            touched(st, &mut assigned);
        }
        self.env = pre_env;
        let join_candidates: Vec<String> = steered
            .iter()
            .cloned()
            .chain(
                assigned
                    .iter()
                    .filter(|v| !steered.contains(v) && self.env.contains_key(*v))
                    .cloned(),
            )
            .collect();
        for v in &join_candidates {
            let t = then_env.get(v).cloned().flatten();
            let e = else_env.get(v).cloned().flatten();
            let pre = self.env.get(v).cloned().flatten();
            let both_new = |d: &Def| Some(d) != pre.as_ref();
            let joined = match (t, e) {
                (Some(a), Some(b)) => {
                    if a == b {
                        a
                    } else {
                        Def::merge(&a, &b)
                    }
                }
                // One branch assigned, the other had no definition at all:
                // only sound when an entry def existed (steered case).
                (Some(a), None) if steered.contains(v) || !both_new(&a) => a,
                (None, Some(b)) if steered.contains(v) || !both_new(&b) => b,
                _ => continue,
            };
            self.env.insert(v.clone(), Some(joined));
        }
        Ok(())
    }

    fn for_loop(
        &mut self,
        init: &Stmt,
        cond: &Expr,
        update: &Stmt,
        body: &[Stmt],
        after: &[Stmt],
    ) -> Result<(), CompileError> {
        if self.in_loop || body.iter().any(|s| matches!(s, Stmt::For { .. })) {
            return Err(CompileError::NestedLoop);
        }
        // The init assignment runs in the outer scope — unless it was
        // hoisted to program start (constant counter inits; see
        // `compile_program`). The paper's `for (i = z; …)` leaves `i`
        // undeclared, so declare counters implicitly.
        if !self.hoisted_inits.contains(&self.current_stmt) {
            if let Stmt::Assign { name, .. } = init {
                self.env.entry(name.clone()).or_insert(None);
            }
            self.stmt(init, &[])?;
        }

        // Live set: everything referenced inside (except body-local
        // declarations, including those nested in `if` branches), plus
        // every already-defined variable read after the loop (so its tag
        // stays in step with values computed by the loop).
        let mut body_declared: Vec<String> = Vec::new();
        for s in body {
            declared_in(s, &mut body_declared);
        }
        let mut live: Vec<String> = Vec::new();
        let mut inside = Vec::new();
        for v in cond.vars() {
            inside.push(v.to_string());
        }
        // `touched` recurses into nested `if` branches, catching reads and
        // assignments alike.
        touched(update, &mut inside);
        for s in body {
            touched(s, &mut inside);
        }
        for v in inside {
            if !live.contains(&v) && !body_declared.contains(&v) {
                live.push(v);
            }
        }
        let mut after_reads = Vec::new();
        for s in after {
            reads_of(s, &mut after_reads);
        }
        for v in after_reads {
            if matches!(self.env.get(&v), Some(Some(_))) && !live.contains(&v) {
                live.push(v);
            }
        }

        // Every live variable needs a definition entering the loop, and all
        // entries must agree on their tag epoch — mixed epochs would
        // deadlock the matching store at runtime.
        let mut entry: Vec<(String, Def)> = Vec::with_capacity(live.len());
        for v in &live {
            entry.push((v.clone(), self.def_of(v)?));
        }
        if let Some(((_, first), rest)) = entry.split_first() {
            for (v, d) in rest {
                if d.epoch != first.epoch {
                    return Err(CompileError::TagMismatch {
                        site: format!("loop entry for `{v}`"),
                    });
                }
            }
        }

        self.epoch += 1;
        let loop_epoch = self.epoch;

        // Inctags: merge entry + loop-back (loop-back connected below).
        let mut inctag: FxHashMap<String, NodeId> = FxHashMap::default();
        for (v, d) in &entry {
            let it = self.b.add_named(NodeKind::IncTag, format!("inctag_{v}"));
            let d = d.clone();
            self.connect_from(&d, it, 0);
            inctag.insert(v.clone(), it);
        }

        // Condition evaluates on inctag outputs (paper: R14 reads B12).
        let outer_env = self.env.clone();
        self.in_loop = true;
        for (v, _) in &entry {
            self.env.insert(
                v.clone(),
                Some(Def::single(inctag[v], OutPort::True, loop_epoch)),
            );
        }
        let ctl = self.expr(cond)?;

        // One steer per live variable, all driven by the same control.
        let mut steer: FxHashMap<String, NodeId> = FxHashMap::default();
        for (v, _) in &entry {
            let st = self.b.add_named(NodeKind::Steer, format!("steer_{v}"));
            let it = inctag[v];
            self.b.connect(it, st, 0);
            self.connect_from(&ctl.clone(), st, 1);
            steer.insert(v.clone(), st);
        }

        // Body runs on the steers' true ports.
        for (v, _) in &entry {
            self.env.insert(
                v.clone(),
                Some(Def::single(steer[v], OutPort::True, loop_epoch)),
            );
        }
        for s in body {
            self.stmt(s, &[])?;
        }
        self.stmt(update, &[])?;

        // Loop-back edges: final body definition (or the steer itself for
        // loop-invariant variables) re-enters the inctag.
        for (v, _) in &entry {
            let d = self.def_of(v)?;
            self.connect_from(&d, inctag[v], 0);
        }

        // After the loop each live variable is the steer's false port.
        self.in_loop = false;
        self.seen_loop = true;
        self.env = outer_env;
        for (v, _) in &entry {
            self.env.insert(
                v.clone(),
                Some(Def::single(steer[v], OutPort::False, loop_epoch)),
            );
        }
        Ok(())
    }
}

/// Names *declared* by a statement, recursively (block scoping).
fn declared_in(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Decl { name, .. } if !out.contains(name) => {
            out.push(name.clone());
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                declared_in(s, out);
            }
        }
        Stmt::For { body, .. } => {
            for s in body {
                declared_in(s, out);
            }
        }
        _ => {}
    }
}

/// Names touched (read, written, or declared) by a statement, recursively.
fn touched(stmt: &Stmt, out: &mut Vec<String>) {
    reads_of(stmt, out);
    match stmt {
        Stmt::Decl { name, .. } | Stmt::Assign { name, .. } | Stmt::Output { name } => {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
        Stmt::For {
            init, update, body, ..
        } => {
            touched(init, out);
            touched(update, out);
            for s in body {
                touched(s, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                touched(s, out);
            }
        }
    }
}

/// Compile a parsed [`Program`] to a dataflow graph.
///
/// A prepass hoists constant for-loop initialisers (`for (j = 2; …)`) of
/// names untouched before their loop to program start. That lets the
/// liveness rule route such counters *through* earlier loops, keeping their
/// tags aligned — the only way a second sequential loop can receive both a
/// fresh counter and loop-one results with matching tags.
pub fn compile_program(p: &Program) -> Result<DataflowGraph, CompileError> {
    let mut cg = Codegen {
        b: GraphBuilder::new(),
        env: FxHashMap::default(),
        epoch: 0,
        fresh_epoch: 0,
        in_loop: false,
        seen_loop: false,
        hoisted_inits: Vec::new(),
        current_stmt: 0,
        branch_gates: Vec::new(),
    };

    // Hoisting prepass.
    let mut seen: Vec<String> = Vec::new();
    for (i, s) in p.stmts.iter().enumerate() {
        if let Stmt::For { init, .. } = s {
            if let Stmt::Assign { name, expr } = &**init {
                if let Some(v) = const_fold(expr) {
                    if !seen.contains(name) {
                        let def = cg.constant(v, name)?;
                        cg.env.insert(name.clone(), Some(def));
                        cg.hoisted_inits.push(i);
                    }
                }
            }
        }
        touched(s, &mut seen);
    }

    for (i, s) in p.stmts.iter().enumerate() {
        cg.current_stmt = i;
        cg.stmt(s, &p.stmts[i + 1..])?;
    }
    cg.b.build().map_err(|errs| {
        CompileError::Graph(
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })
}

/// Parse and compile source text.
pub fn compile(src: &str) -> Result<DataflowGraph, CompileError> {
    let p = crate::parser::parse(src)?;
    compile_program(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::engine::SeqEngine;
    use gammaflow_multiset::{Symbol, Value};

    fn run_outputs(src: &str) -> Vec<(String, i64, u64)> {
        let g = compile(src).unwrap();
        let r = SeqEngine::new(&g).run().unwrap();
        assert!(r.residue.is_empty(), "residue after {src}: {:?}", r.residue);
        let mut out: Vec<(String, i64, u64)> = r
            .outputs
            .iter()
            .map(|e| {
                (
                    e.label.as_str().to_string(),
                    e.value.as_int().unwrap(),
                    e.tag.0,
                )
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn example1_compiles_and_runs() {
        let out = run_outputs(
            "int x = 1; int y = 5; int k = 3; int j = 2; int m; m = (x + y) - (k * j); output m;",
        );
        assert_eq!(out, vec![("m".to_string(), 0, 0)]);
    }

    #[test]
    fn example1_structure_matches_fig1() {
        // The generated graph must be isomorphic to the hand-built Fig. 1.
        let g = compile(
            "int x = 1; int y = 5; int k = 3; int j = 2; int m; m = (x + y) - (k * j); output m;",
        )
        .unwrap();
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        let fig1 = b.build().unwrap();
        assert!(gammaflow_dataflow::iso::isomorphic(&g, &fig1));
    }

    #[test]
    fn example2_loop_computes() {
        let out = run_outputs(
            "int y = 5; int z = 3; int x = 10; for (i = z; i > 0; i--) { x = x + y; } output x;",
        );
        // x = 10 + 5*3 = 25, exits at tag z+1 = 4.
        assert_eq!(out, vec![("x".to_string(), 25, 4)]);
    }

    #[test]
    fn example2_zero_iterations() {
        let out = run_outputs(
            "int y = 5; int z = 0; int x = 10; for (i = z; i > 0; i--) { x = x + y; } output x;",
        );
        assert_eq!(out, vec![("x".to_string(), 10, 1)]);
    }

    #[test]
    fn loop_with_update_assignment_form() {
        let out = run_outputs("int x = 1; for (i = 5; i > 0; i = i - 1) { x = x * 2; } output x;");
        assert_eq!(out, vec![("x".to_string(), 32, 6)]);
    }

    #[test]
    fn counting_up_loop() {
        let out =
            run_outputs("int s = 0; int n = 4; for (i = 0; i < n; i++) { s = s + i; } output s;");
        // 0+0+1+2+3 = 6.
        assert_eq!(out, vec![("s".to_string(), 6, 5)]);
    }

    #[test]
    fn post_loop_arithmetic_works() {
        let out = run_outputs(
            "int x = 0; int c = 100; for (i = 3; i > 0; i--) { x = x + 1; } int m; m = x + c; output m;",
        );
        // c is routed through the loop because it is read after it.
        assert_eq!(out, vec![("m".to_string(), 103, 4)]);
    }

    #[test]
    fn two_sequential_loops() {
        let out = run_outputs(
            "int x = 1; for (i = 2; i > 0; i--) { x = x * 3; } for (j = 2; j > 0; j--) { x = x + 1; } output x;",
        );
        // (1*9) + 2 = 11; tags: 3 after loop 1, then +3.
        assert_eq!(out, vec![("x".to_string(), 11, 6)]);
    }

    #[test]
    fn undeclared_variable_rejected() {
        assert!(matches!(
            compile("x = 1;"),
            Err(CompileError::Undeclared(_))
        ));
    }

    #[test]
    fn uninitialised_read_rejected() {
        assert!(matches!(
            compile("int x; int y = 1; y = x + 1;"),
            Err(CompileError::Uninitialised(_))
        ));
    }

    #[test]
    fn nested_loop_rejected() {
        let src = "int x = 0; for (i = 2; i > 0; i--) { for (j = 2; j > 0; j--) { x = x + 1; } } output x;";
        assert!(matches!(compile(src), Err(CompileError::NestedLoop)));
    }

    #[test]
    fn standalone_const_in_loop_rejected() {
        let src = "int x = 0; for (i = 2; i > 0; i--) { x = 5; } output x;";
        assert!(matches!(compile(src), Err(CompileError::ConstInLoop(_))));
    }

    #[test]
    fn post_loop_constant_mixing_rejected() {
        // `int c = 9;` after the loop mints a tag-0 constant; mixing it
        // with the loop exit x must be a compile error, not a deadlock.
        let src =
            "int x = 0; for (i = 2; i > 0; i--) { x = x + 1; } int c = 9; int m; m = x + c; output m;";
        assert!(matches!(
            compile(src),
            Err(CompileError::TagMismatch { .. })
        ));
    }

    #[test]
    fn immediates_are_fused() {
        let g = compile("int x = 7; int m; m = x + 1; output m;").unwrap();
        // Nodes: const x, add-imm, output. No const node for the 1.
        assert_eq!(g.node_count(), 3);
        let r = SeqEngine::new(&g).run().unwrap();
        assert_eq!(r.outputs.sorted_elements()[0].value, Value::int(8));
    }

    #[test]
    fn multiple_outputs() {
        let out = run_outputs(
            "int a = 2; int b = 3; int s; int p; s = a + b; p = a * b; output s; output p;",
        );
        assert_eq!(out, vec![("p".to_string(), 6, 0), ("s".to_string(), 5, 0)]);
    }

    #[test]
    fn if_else_takes_both_paths() {
        for (a, want) in [(5, 6), (-5, -4)] {
            let src =
                format!("int a = {a}; if (a > 0) {{ a = a + 1; }} else {{ a = a + 1; }} output a;");
            let out = run_outputs(&src);
            assert_eq!(out[0].1, want, "a={a}");
        }
    }

    #[test]
    fn if_branches_compute_differently() {
        for (a, want) in [(7, 70), (2, -2)] {
            let src = format!(
                "int a = {a}; int r; if (a > 5) {{ r = a * 10; }} else {{ r = 0 - a; }} output r;"
            );
            let out = run_outputs(&src);
            assert_eq!(out, vec![("r".to_string(), want, 0)], "a={a}");
        }
    }

    #[test]
    fn if_without_else_passes_through() {
        for (a, want) in [(10, 11), (0, 0)] {
            let src = format!("int a = {a}; if (a > 5) {{ a = a + 1; }} output a;");
            let out = run_outputs(&src);
            assert_eq!(out[0].1, want, "a={a}");
        }
    }

    #[test]
    fn read_only_var_in_branch() {
        // b is read in the then-branch but never assigned; it must steer
        // through cleanly and survive for the final output.
        for (a, want_r) in [(1, 99), (-1, 0)] {
            let src = format!(
                "int a = {a}; int b = 99; int r = 0; if (a > 0) {{ r = b; }} output r; output b;"
            );
            let g = compile(&src).unwrap();
            let res = SeqEngine::new(&g).run().unwrap();
            assert!(res.residue.is_empty(), "a={a}: {:?}", res.residue);
            let r = res
                .outputs
                .iter()
                .find(|e| e.label.as_str() == "r")
                .unwrap()
                .value
                .as_int()
                .unwrap();
            assert_eq!(r, want_r, "a={a}");
        }
    }

    #[test]
    fn if_inside_loop_conditional_accumulate() {
        // Sum of even i in 0..6 = 0+2+4 = 6.
        let src = "int s = 0; int n = 6; for (i = 0; i < n; i++) { if (i % 2 == 0) { s = s + i; } } output s;";
        let out = run_outputs(src);
        assert_eq!(out[0].0, "s");
        assert_eq!(out[0].1, 6);
    }

    #[test]
    fn nested_ifs() {
        for (a, want) in [(15, 3), (8, 2), (-2, 1)] {
            let src = format!(
                "int a = {a}; int c = 1; if (a > 0) {{ c = 2; if (a > 10) {{ c = 3; }} }} output c;"
            );
            let out = run_outputs(&src);
            assert_eq!(out[0].1, want, "a={a}");
        }
    }

    #[test]
    fn if_graphs_check_equivalent_via_algorithm1() {
        use gammaflow_core::{check_equivalence, CheckConfig};
        let sources = [
            "int a = 7; int r; if (a > 5) { r = a * 10; } else { r = 0 - a; } output r;",
            "int s = 0; int n = 5; for (i = 0; i < n; i++) { if (i % 2 == 0) { s = s + i; } } output s;",
            "int a = 3; int b = 99; int r = 0; if (a > 0) { r = b + a; } output r;",
        ];
        for src in sources {
            let g = compile(src).unwrap();
            let report = check_equivalence(&g, &CheckConfig::default()).unwrap();
            assert!(report.equivalent, "{src}: {:?}", report.mismatch);
        }
    }

    #[test]
    fn output_labels_are_variable_names() {
        let g = compile("int a = 2; output a;").unwrap();
        let labels: Vec<&str> = g.output_labels().iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["a"]);
        let _ = Symbol::intern("a");
    }
}
