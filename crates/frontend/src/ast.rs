//! AST for the mini imperative (von Neumann) language.
//!
//! The paper derives its dataflow graphs from C-like snippets:
//!
//! ```text
//! int x = 1; int y = 5; int k = 3; int j = 2; int m;
//! m = (x + y) - (k * j);
//! ```
//!
//! and
//!
//! ```text
//! for (i = z; i > 0; i--)
//!     x = x + y;
//! ```
//!
//! This AST covers exactly that shape plus an `output` statement to make
//! results observable (the paper's Fig. 2 silently discards the final `x`;
//! `output x;` wires it to an output sink instead).

use gammaflow_multiset::value::{BinOp, CmpOp};
use std::fmt;

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (only valid as a loop condition).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// All variables read by this expression, in first-use order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Int(_) => {}
            Expr::Var(v) => {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.collect(out);
                b.collect(out);
            }
            Expr::Neg(a) => a.collect(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(x) => write!(f, "{x}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int x;` or `int x = <expr>;`
    Decl {
        /// Variable name.
        name: String,
        /// Optional initialiser.
        init: Option<Expr>,
    },
    /// `x = <expr>;`
    Assign {
        /// Target variable.
        name: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `for (<init>; <cond>; <update>) { <body> }` — the update accepts
    /// `i--` / `i++` sugar, stored as an assignment.
    For {
        /// Loop initialiser (an assignment).
        init: Box<Stmt>,
        /// Loop condition (a comparison).
        cond: Expr,
        /// Loop update (an assignment).
        update: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (<cond>) { <then> } else { <else> }` — compiled to the steer
    /// pattern of the paper's §II-A: every variable either branch touches
    /// is routed through a steer; definitions merge at the join.
    If {
        /// Branch condition (a comparison).
        cond: Expr,
        /// Taken when the condition holds.
        then_branch: Vec<Stmt>,
        /// Taken otherwise (may be empty).
        else_branch: Vec<Stmt>,
    },
    /// `output x;` — wire `x` to an output sink labelled `x`.
    Output {
        /// Variable to observe.
        name: String,
    },
}

/// A program: a statement list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_first_use_order() {
        let e = Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Var("y".into())),
            )),
            Box::new(Expr::Var("x".into())),
        );
        assert_eq!(e.vars(), vec!["x", "y"]);
    }

    #[test]
    fn display_is_fully_parenthesised() {
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Int(3)),
            Box::new(Expr::Var("j".into())),
        );
        assert_eq!(e.to_string(), "(3 * j)");
    }
}
