//! Random expression-DAG generators.
//!
//! Produce acyclic dataflow graphs of parameterised size and shape —
//! layered DAGs of arithmetic/comparison nodes over integer constants —
//! plus the reference value of every output (computed structurally, not by
//! an engine, so engine bugs cannot hide). These drive the randomized
//! differential equivalence experiment (E6) and the conversion-throughput
//! benchmarks (P4).

use gammaflow_dataflow::graph::{DataflowGraph, GraphBuilder, NodeId};
use gammaflow_dataflow::node::NodeKind;
use gammaflow_multiset::value::BinOp;
use gammaflow_multiset::{Element, ElementBag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_dag`].
#[derive(Debug, Clone)]
pub struct DagParams {
    /// Number of constant (root) nodes.
    pub roots: usize,
    /// Number of operator layers.
    pub layers: usize,
    /// Operator nodes per layer.
    pub width: usize,
    /// Constant value range (inclusive, symmetric: `-range..=range`).
    pub range: i64,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams {
            roots: 4,
            layers: 3,
            width: 4,
            range: 100,
        }
    }
}

/// A generated DAG plus its reference outputs.
#[derive(Debug, Clone)]
pub struct GeneratedDag {
    /// The graph (every last-layer node wired to an output sink).
    pub graph: DataflowGraph,
    /// The expected output bag (edge label → value, tag 0).
    pub expected: ElementBag,
}

/// Division/remainder are excluded: a random divisor can be zero, which is
/// a *fault* in both models — faults are tested separately, not here.
const OPS: [BinOp; 5] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];

/// Generate a random layered DAG. Each operator draws its two operands
/// uniformly from all earlier nodes, so fan-out (one producer feeding many
/// consumers — the interesting case for Algorithm 1's per-edge elements)
/// arises naturally.
pub fn random_dag(seed: u64, params: &DagParams) -> GeneratedDag {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    // Reference values per producing node.
    let mut produced: Vec<(NodeId, i64)> = Vec::new();

    for i in 0..params.roots.max(1) {
        let v = rng.gen_range(-params.range..=params.range);
        let id = b.constant_named(v, &format!("c{i}"));
        produced.push((id, v));
    }

    for layer in 0..params.layers {
        let layer_start = produced.len();
        for w in 0..params.width {
            let op = OPS[rng.gen_range(0..OPS.len())];
            // Draw operands from strictly earlier layers so the graph
            // stays acyclic even while this layer is under construction.
            let ai = rng.gen_range(0..layer_start);
            let bi = rng.gen_range(0..layer_start);
            let node = b.add_named(NodeKind::Arith(op, None), format!("l{layer}w{w}"));
            b.connect(produced[ai].0, node, 0);
            b.connect(produced[bi].0, node, 1);
            let value = eval(op, produced[ai].1, produced[bi].1);
            produced.push((node, value));
        }
    }

    // Wire every node with no consumer yet (sources of the final layer and
    // any unused intermediates) to output sinks so all results are
    // observable.
    let consumed: gammaflow_multiset::FxHashSet<NodeId> = {
        // GraphBuilder doesn't expose edges; track via a second pass using
        // the builder's build() — instead, just wire the last layer.
        gammaflow_multiset::FxHashSet::default()
    };
    let _ = consumed;
    let last_layer = produced.len() - params.width.min(produced.len())..produced.len();
    let mut expected = ElementBag::new();
    for (k, idx) in last_layer.enumerate() {
        let (node, value) = produced[idx];
        let sink = b.add_named(NodeKind::Output, format!("out{k}_sink"));
        let label = format!("out{k}");
        b.connect_labelled(node, sink, 0, &label);
        expected.insert(Element::pair(value, label.as_str()));
    }

    let graph = b.build().expect("generated DAG is structurally valid");
    GeneratedDag { graph, expected }
}

fn eval(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        _ => unreachable!("OPS contains no other operator"),
    }
}

/// A wide, embarrassingly parallel DAG: `pairs` independent `a ⊕ b`
/// computations. Used for PE-scaling experiments where the parallelism is
/// known by construction (= `pairs`).
pub fn wide_pairs(seed: u64, pairs: usize) -> GeneratedDag {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut expected = ElementBag::new();
    for i in 0..pairs {
        let x = rng.gen_range(-1000..=1000);
        let y = rng.gen_range(-1000..=1000);
        let op = OPS[rng.gen_range(0..OPS.len())];
        let cx = b.constant(x);
        let cy = b.constant(y);
        let node = b.add(NodeKind::Arith(op, None));
        let sink = b.add_named(NodeKind::Output, format!("p{i}_sink"));
        b.connect(cx, node, 0);
        b.connect(cy, node, 1);
        let label = format!("p{i}");
        b.connect_labelled(node, sink, 0, &label);
        expected.insert(Element::pair(eval(op, x, y), label.as_str()));
    }
    GeneratedDag {
        graph: b.build().expect("valid by construction"),
        expected,
    }
}

/// `chains` independent chains of `depth` increment nodes each — known
/// parallelism = `chains`, with enough work per chain to amortise
/// scheduling. Nodes of one chain have consecutive ids, so the parallel
/// engine's block partition keeps each chain PE-local (experiment P2's
/// locality ablation).
pub fn wide_chains(seed: u64, chains: usize, depth: usize) -> GeneratedDag {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let mut expected = ElementBag::new();
    for c in 0..chains {
        let start = rng.gen_range(-1000..=1000);
        let mut prev = b.constant(start);
        for _ in 0..depth {
            let node = b.add(NodeKind::Arith(
                BinOp::Add,
                Some(gammaflow_dataflow::node::Imm::right(1)),
            ));
            b.connect(prev, node, 0);
            prev = node;
        }
        let sink = b.add_named(NodeKind::Output, format!("c{c}_sink"));
        let label = format!("c{c}");
        b.connect_labelled(prev, sink, 0, &label);
        expected.insert(Element::pair(start + depth as i64, label.as_str()));
    }
    GeneratedDag {
        graph: b.build().expect("valid by construction"),
        expected,
    }
}

/// A deep dependency chain of `depth` unary increments — zero parallelism,
/// the worst case for any parallel engine (used as the serial baseline in
/// scaling experiments).
pub fn deep_chain(depth: usize, start: i64) -> GeneratedDag {
    let mut b = GraphBuilder::new();
    let mut prev = b.constant(start);
    for _ in 0..depth {
        let node = b.add(NodeKind::Arith(
            BinOp::Add,
            Some(gammaflow_dataflow::node::Imm::right(1)),
        ));
        b.connect(prev, node, 0);
        prev = node;
    }
    let sink = b.add_named(NodeKind::Output, "end_sink");
    b.connect_labelled(prev, sink, 0, "end");
    let mut expected = ElementBag::new();
    expected.insert(Element::pair(start.wrapping_add(depth as i64), "end"));
    GeneratedDag {
        graph: b.build().expect("valid by construction"),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::engine::SeqEngine;

    #[test]
    fn random_dag_reference_matches_engine() {
        for seed in 0..10 {
            let dag = random_dag(seed, &DagParams::default());
            let result = SeqEngine::new(&dag.graph).run().unwrap();
            assert_eq!(result.outputs, dag.expected, "seed {seed}");
        }
    }

    #[test]
    fn bigger_dags_also_agree() {
        let params = DagParams {
            roots: 10,
            layers: 6,
            width: 8,
            range: 1_000_000,
        };
        for seed in [99, 1234] {
            let dag = random_dag(seed, &params);
            assert_eq!(dag.graph.node_count(), 10 + 6 * 8 + 8);
            let result = SeqEngine::new(&dag.graph).run().unwrap();
            assert_eq!(result.outputs, dag.expected, "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_dag(7, &DagParams::default());
        let b = random_dag(7, &DagParams::default());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.expected, b.expected);
    }

    #[test]
    fn wide_pairs_has_expected_profile() {
        let dag = wide_pairs(1, 16);
        let result = SeqEngine::new(&dag.graph).run().unwrap();
        assert_eq!(result.outputs, dag.expected);
        // All 16 operator firings land in one wave.
        assert_eq!(result.profile, vec![16]);
    }

    #[test]
    fn wide_chains_reference_matches_engine() {
        let dag = wide_chains(5, 8, 64);
        let result = SeqEngine::new(&dag.graph).run().unwrap();
        assert_eq!(result.outputs, dag.expected);
        // 8 chains advance in lockstep: every wave fires 8 nodes.
        assert!(result.profile[..64].iter().all(|&w| w == 8));
    }

    #[test]
    fn deep_chain_is_serial() {
        let dag = deep_chain(50, 7);
        let result = SeqEngine::new(&dag.graph).run().unwrap();
        assert_eq!(result.outputs, dag.expected);
        // One firing per wave: fully serial.
        assert_eq!(result.profile.len(), 50);
        assert!(result.profile.iter().all(|&w| w == 1));
    }
}
