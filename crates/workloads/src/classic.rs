//! Classic Gamma programs from the literature.
//!
//! The paper's §II-B cites the standard Gamma repertoire (Banâtre &
//! Le Métayer's examples): minimum/maximum via Eq. (2), reductions, the
//! prime sieve, GCD, and exchange sort. These exercise features the
//! Algorithm-1 images do not — `where` conditions, wildcard-free matching
//! over big single-label buckets, and cross-tag patterns — and are the
//! workloads for experiments P3 (matching strategies / parallel scaling).

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{ElementSpec, GammaProgram, Pattern, ReactionSpec, TagPat, ValuePat};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag, Symbol};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A self-checking Gamma workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Descriptive name.
    pub name: &'static str,
    /// The program.
    pub program: GammaProgram,
    /// The initial multiset.
    pub initial: ElementBag,
    /// The expected stable multiset.
    pub expected: ElementBag,
}

/// Eq. (2) of the paper: keep the smaller of any two elements; stabilises
/// at the minimum.
pub fn minimum(values: &[i64]) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("min")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .where_(Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y")))
        .by(vec![ElementSpec::pair(Expr::var("x"), "n")])]);
    let initial: ElementBag = values.iter().map(|&v| Element::pair(v, "n")).collect();
    // Strict `<` keeps duplicates of the minimum.
    let min = values.iter().copied().min().expect("non-empty");
    let k = values.iter().filter(|&&v| v == min).count();
    let mut expected = ElementBag::new();
    expected.insert_n(Element::pair(min, "n"), k);
    Workload {
        name: "minimum",
        program,
        initial,
        expected,
    }
}

/// The dual: stabilises at the maximum.
pub fn maximum(values: &[i64]) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("max")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .where_(Expr::cmp(CmpOp::Gt, Expr::var("x"), Expr::var("y")))
        .by(vec![ElementSpec::pair(Expr::var("x"), "n")])]);
    let initial: ElementBag = values.iter().map(|&v| Element::pair(v, "n")).collect();
    let max = values.iter().copied().max().expect("non-empty");
    let k = values.iter().filter(|&&v| v == max).count();
    let mut expected = ElementBag::new();
    expected.insert_n(Element::pair(max, "n"), k);
    Workload {
        name: "maximum",
        program,
        initial,
        expected,
    }
}

/// Pairwise sum: stabilises at one element holding the total.
pub fn sum(values: &[i64]) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("sum")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("y")),
            "n",
        )])]);
    let initial: ElementBag = values.iter().map(|&v| Element::pair(v, "n")).collect();
    let total: i64 = values.iter().fold(0i64, |a, &b| a.wrapping_add(b));
    let expected: ElementBag = [Element::pair(total, "n")].into_iter().collect();
    Workload {
        name: "sum",
        program,
        initial,
        expected,
    }
}

/// The sieve: `replace x, y by y where x % y == 0` over `{2..=n}` leaves
/// exactly the primes.
pub fn primes(n: i64) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("sieve")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .where_(Expr::cmp(
            CmpOp::Eq,
            Expr::bin(BinOp::Rem, Expr::var("x"), Expr::var("y")),
            Expr::int(0),
        ))
        .by(vec![ElementSpec::pair(Expr::var("y"), "n")])]);
    let initial: ElementBag = (2..=n).map(|v| Element::pair(v, "n")).collect();
    let expected: ElementBag = (2..=n)
        .filter(|&v| (2..v).all(|d| v % d != 0))
        .map(|v| Element::pair(v, "n"))
        .collect();
    Workload {
        name: "primes",
        program,
        initial,
        expected,
    }
}

/// Set-wide GCD by repeated subtraction: `{x, y} → {x − y, y}` while
/// `x > y`; stabilises with every element equal to the gcd.
pub fn gcd(values: &[i64]) -> Workload {
    assert!(values.iter().all(|&v| v > 0), "gcd needs positive inputs");
    let program = GammaProgram::new(vec![ReactionSpec::new("gcd")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .where_(Expr::cmp(CmpOp::Gt, Expr::var("x"), Expr::var("y")))
        .by(vec![
            ElementSpec::pair(Expr::bin(BinOp::Sub, Expr::var("x"), Expr::var("y")), "n"),
            ElementSpec::pair(Expr::var("y"), "n"),
        ])]);
    let initial: ElementBag = values.iter().map(|&v| Element::pair(v, "n")).collect();
    let g = values.iter().copied().fold(0, gcd2);
    let mut expected = ElementBag::new();
    expected.insert_n(Element::pair(g, "n"), values.len());
    Workload {
        name: "gcd",
        program,
        initial,
        expected,
    }
}

fn gcd2(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd2(b, a % b)
    }
}

/// Exchange sort: elements `[value, 'arr', index]` (the index lives in the
/// tag field); out-of-order pairs swap values. Stabilises at the sorted
/// permutation. Exercises *cross-tag* matching — patterns with distinct
/// tag variables and conditions over them.
pub fn exchange_sort(values: &[i64], seed: u64) -> Workload {
    let i = Symbol::intern("i");
    let j = Symbol::intern("j");
    let program = GammaProgram::new(vec![ReactionSpec::new("swap")
        .replace(Pattern {
            value: ValuePat::Var(Symbol::intern("a")),
            label: gammaflow_gamma::spec::LabelPat::Lit(Symbol::intern("arr")),
            tag: TagPat::Var(i),
        })
        .replace(Pattern {
            value: ValuePat::Var(Symbol::intern("b")),
            label: gammaflow_gamma::spec::LabelPat::Lit(Symbol::intern("arr")),
            tag: TagPat::Var(j),
        })
        .where_(Expr::and(
            Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Var(j)),
            Expr::cmp(CmpOp::Gt, Expr::var("a"), Expr::var("b")),
        ))
        .by(vec![
            ElementSpec::tagged(Expr::var("b"), "arr", "i"),
            ElementSpec::tagged(Expr::var("a"), "arr", "j"),
        ])]);
    // Shuffle the input so the initial permutation is seed-controlled.
    let mut shuffled: Vec<i64> = values.to_vec();
    shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    let initial: ElementBag = shuffled
        .iter()
        .enumerate()
        .map(|(idx, &v)| Element::new(v, "arr", idx as u64))
        .collect();
    let mut sorted = values.to_vec();
    sorted.sort();
    let expected: ElementBag = sorted
        .iter()
        .enumerate()
        .map(|(idx, &v)| Element::new(v, "arr", idx as u64))
        .collect();
    Workload {
        name: "exchange_sort",
        program,
        initial,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{run_parallel, ParConfig, SeqInterpreter, Status};

    fn run_and_check(w: &Workload, seed: u64) {
        let result = SeqInterpreter::with_seed(&w.program, w.initial.clone(), seed)
            .run()
            .unwrap();
        assert_eq!(result.status, Status::Stable, "{} diverged", w.name);
        assert_eq!(
            result.multiset, w.expected,
            "{} wrong result: got {} want {}",
            w.name, result.multiset, w.expected
        );
    }

    #[test]
    fn minimum_works() {
        run_and_check(&minimum(&[5, 3, 9, 3, 7]), 0);
        run_and_check(&minimum(&[42]), 1);
        run_and_check(&minimum(&[2, 2, 2]), 2);
    }

    #[test]
    fn maximum_works() {
        run_and_check(&maximum(&[5, 3, 9, 3, 7]), 0);
        run_and_check(&maximum(&[-5, -9]), 3);
    }

    #[test]
    fn sum_works() {
        run_and_check(&sum(&(1..=30).collect::<Vec<_>>()), 0);
        run_and_check(&sum(&[-5]), 0);
    }

    #[test]
    fn primes_works() {
        let w = primes(30);
        run_and_check(&w, 0);
        let got: Vec<i64> = w
            .expected
            .sorted_elements()
            .iter()
            .map(|e| e.value.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn gcd_works() {
        run_and_check(&gcd(&[12, 18, 30]), 0);
        run_and_check(&gcd(&[7, 13]), 1);
    }

    #[test]
    fn exchange_sort_works() {
        run_and_check(&exchange_sort(&[9, 1, 8, 2, 7, 3], 11), 0);
        run_and_check(&exchange_sort(&[1, 1, 0, 0], 5), 1);
    }

    #[test]
    fn sort_runs_in_parallel_engine() {
        let w = exchange_sort(&(0..20).rev().collect::<Vec<_>>(), 3);
        let result =
            run_parallel(&w.program, w.initial.clone(), &ParConfig::with_workers(4)).unwrap();
        assert_eq!(result.exec.status, Status::Stable);
        assert_eq!(result.exec.multiset, w.expected);
    }

    #[test]
    fn primes_runs_in_parallel_engine() {
        let w = primes(60);
        let result =
            run_parallel(&w.program, w.initial.clone(), &ParConfig::with_workers(4)).unwrap();
        assert_eq!(result.exec.status, Status::Stable);
        assert_eq!(result.exec.multiset, w.expected);
    }
}
