//! Workload generators and classic programs for the gammaflow test and
//! benchmark suites.
//!
//! * [`expr_dags`] — random layered expression DAGs with structurally
//!   computed reference outputs (experiments E6, P4), plus wide/deep
//!   extremes for scaling studies.
//! * [`loops`] — parameterised families of the paper's Fig. 2 loop,
//!   including multi-loop graphs with known inter-loop parallelism (P2)
//!   and the mini-C sources they correspond to.
//! * [`classic`] — the standard Gamma repertoire (minimum per the paper's
//!   Eq. (2), maximum, sum, primes sieve, GCD, exchange sort), each
//!   self-checking (P3).
//! * [`joins`] — guard-heavy join workloads (conjunctive sieve, triangle
//!   counting over edge elements, interval union) exercising the rete
//!   matcher's partial-match memory and guard pushdown (harness `S2`).
//! * [`fusion`] — synthetic sensor data-fusion / target-tracking scenario
//!   standing in for the paper's application reference \[1\].
//! * [`image`] — synthetic image segmentation + histogram scenario
//!   standing in for the chemical-model image-processing applications
//!   (paper ref. \[21\]).
//! * [`streaming`] — wave-structured input for the `Session` lifecycle
//!   (rolling top-k over a growing candidate history; harness `S5`).
//!
//! # Example
//!
//! Every workload is self-checking: it carries the program, the initial
//! multiset, and the expected stable multiset, so any engine can be
//! asserted against it. The primes sieve, run to stability:
//!
//! ```
//! use gammaflow_gamma::{SeqInterpreter, Status};
//! use gammaflow_workloads::primes;
//!
//! let w = primes(30);
//! let result = SeqInterpreter::with_seed(&w.program, w.initial.clone(), 7)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.status, Status::Stable);
//! assert_eq!(result.multiset, w.expected); // {2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
//! ```

#![warn(missing_docs)]

pub mod classic;
pub mod expr_dags;
pub mod fusion;
pub mod image;
pub mod joins;
pub mod loops;
pub mod streaming;

pub use classic::{exchange_sort, gcd, maximum, minimum, primes, sum, Workload};
pub use expr_dags::{deep_chain, random_dag, wide_chains, wide_pairs, DagParams, GeneratedDag};
pub use fusion::{scenario as fusion_scenario, FusionScenario};
pub use image::{scenario as image_scenario, ImageScenario};
pub use joins::{cross_sum, divisor_sieve, interval_merge, triangles};
pub use loops::{accumulator_loop, build_fig2_into, parallel_loops, source_for, LoopWorkload};
pub use streaming::{burst_drain, rolling_topk, windowed_sum, StreamingWorkload};
