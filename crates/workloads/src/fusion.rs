//! Sensor data-fusion workload (the paper's application reference \[1\]:
//! "a parallel implementation of data fusion algorithm using Gamma",
//! target tracking on naval sensor data).
//!
//! The original uses classified radar traces; per DESIGN.md's substitution
//! rule we synthesise the same *shape* of computation: each target `t`
//! yields many position measurements tagged `t`; a fusion stage combines
//! same-target measurements; a classification stage flags fused tracks
//! beyond a threshold.
//!
//! Fusion is **sum-then-divide** rather than pairwise averaging: summation
//! is associative-commutative, so the stable result is independent of the
//! nondeterministic reduction tree (pairwise midpoints are not — an
//! unbalanced tree weights early measurements differently). Confluence
//! under nondeterminism is exactly the property the differential tests
//! lean on.
//!
//! The workload exercises what the paper's equivalence needs from Gamma:
//! tag-grouped matching (same-target pairing is the multiset twin of
//! dataflow's same-tag firing rule) and a two-stage pipeline (`;`).

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{ElementSpec, GammaProgram, Pattern, Pipeline, ReactionSpec};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generated data-fusion scenario.
#[derive(Debug, Clone)]
pub struct FusionScenario {
    /// Stage 1 (same-target summation) then stage 2 (mean + threshold
    /// classification).
    pub pipeline: Pipeline,
    /// The raw measurement multiset.
    pub initial: ElementBag,
    /// Expected stable multiset after both stages: one `track` element per
    /// target (the mean position, integer division) plus one `alert`
    /// element per target whose mean exceeds the threshold.
    pub expected: ElementBag,
    /// The alert threshold used.
    pub threshold: i64,
}

/// Build a scenario: `targets` targets × `measurements_per_target` readings
/// (positions in `0..1000`), alert threshold fixed at 700.
pub fn scenario(seed: u64, targets: usize, measurements_per_target: usize) -> FusionScenario {
    assert!(measurements_per_target > 0);
    let threshold = 700i64;
    let m = measurements_per_target as i64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut initial = ElementBag::new();
    let mut expected = ElementBag::new();

    for t in 0..targets {
        // Per-target bias spreads the fused means across 100..900 so both
        // sides of the alert threshold actually occur.
        let base = 100 + (t as i64 * 600) / targets.max(1) as i64;
        let mut sum = 0i64;
        for _ in 0..measurements_per_target {
            let reading = base + rng.gen_range(0..200);
            sum += reading;
            initial.insert(Element::new(reading, "meas", t as u64));
        }
        let mean = sum / m;
        expected.insert(Element::new(mean, "track", t as u64));
        if mean > threshold {
            expected.insert(Element::new(1, "alert", t as u64));
        }
    }

    // Stage 1: same-target summation — associative/commutative, hence
    // confluent under any firing order.
    let fuse = GammaProgram::new(vec![ReactionSpec::new("fuse")
        .replace(Pattern::tagged("a", "meas", "t"))
        .replace(Pattern::tagged("b", "meas", "t"))
        .by(vec![ElementSpec::tagged(
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
            "meas",
            "t",
        )])]);

    // Stage 2: divide by the (static) measurement count to get the mean,
    // alerting when past the threshold.
    let mean_expr = Expr::bin(BinOp::Div, Expr::var("p"), Expr::int(m));
    let classify = GammaProgram::new(vec![ReactionSpec::new("promote")
        .replace(Pattern::tagged("p", "meas", "t"))
        .by_if(
            vec![
                ElementSpec::tagged(mean_expr.clone(), "track", "t"),
                ElementSpec::tagged(Expr::int(1), "alert", "t"),
            ],
            Expr::cmp(CmpOp::Gt, mean_expr.clone(), Expr::int(threshold)),
        )
        .by_else(vec![ElementSpec::tagged(mean_expr, "track", "t")])]);

    FusionScenario {
        pipeline: Pipeline::new(vec![fuse, classify]),
        initial,
        expected,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::seq::{run_pipeline, ExecConfig, Selection, Status};

    #[test]
    fn fusion_reaches_exact_means() {
        for seed in 0..5 {
            let s = scenario(seed, 6, 8);
            let result =
                run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
            assert_eq!(result.status, Status::Stable);
            assert_eq!(
                result.multiset, s.expected,
                "seed {seed}: got {} want {}",
                result.multiset, s.expected
            );
        }
    }

    #[test]
    fn result_is_schedule_independent() {
        let s = scenario(3, 4, 7);
        let mut results = Vec::new();
        for exec_seed in [0u64, 9, 1234] {
            let config = ExecConfig {
                selection: Selection::Seeded(exec_seed),
                ..ExecConfig::default()
            };
            let r = run_pipeline(&s.pipeline, s.initial.clone(), &config).unwrap();
            results.push(r.multiset);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert_eq!(results[0], s.expected);
    }

    #[test]
    fn targets_never_mix() {
        let s = scenario(42, 2, 4);
        let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
        let tracks: Vec<_> = result
            .multiset
            .iter()
            .filter(|e| e.label.as_str() == "track")
            .collect();
        assert_eq!(tracks.len(), 2);
        assert_eq!(result.multiset, s.expected);
    }

    #[test]
    fn alerts_fire_only_above_threshold() {
        let s = scenario(7, 10, 4);
        let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
        for e in result.multiset.iter() {
            if e.label.as_str() == "alert" {
                let track = result
                    .multiset
                    .iter()
                    .find(|x| x.label.as_str() == "track" && x.tag == e.tag)
                    .expect("alert without track");
                assert!(track.value.as_int().unwrap() > s.threshold);
            }
        }
    }

    #[test]
    fn single_measurement_targets_skip_fusion() {
        let s = scenario(1, 3, 1);
        let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
        assert_eq!(result.multiset, s.expected);
    }
}
