//! Image-processing workload (the paper cites Gamma's application to image
//! processing via ref. \[21\], "Gamma and the chemical reaction model").
//!
//! Classic chemical-model image examples operate on pixel multisets. We
//! synthesise a greyscale image (no proprietary data needed) and run two
//! stages:
//!
//! 1. **Threshold segmentation** — each pixel `[p, 'px', idx]` becomes a
//!    binary `[0|1, 'seg', idx]`; a unary, embarrassingly parallel reaction
//!    (the parallel interpreter's best case).
//! 2. **Histogram reduction** — foreground pixels contribute to a count
//!    via an associative merge, yielding `[count, 'fg']`.
//!
//! Pixel indices live in the tag field, exactly how Algorithm 1 encodes
//! per-datum identity.

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{ElementSpec, GammaProgram, Pattern, Pipeline, ReactionSpec, TagSpec};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generated segmentation scenario.
#[derive(Debug, Clone)]
pub struct ImageScenario {
    /// Stage 1: per-pixel segmentation; stage 2: foreground count.
    pub pipeline: Pipeline,
    /// Pixel multiset `[value, 'px', index]`.
    pub initial: ElementBag,
    /// Expected: per-pixel `seg` elements plus one `[count, 'fg']`.
    pub expected: ElementBag,
    /// Width × height used by the generator.
    pub pixels: usize,
}

/// Build a scenario with `pixels` pixels of synthetic greyscale (0..256)
/// and threshold 128.
pub fn scenario(seed: u64, pixels: usize) -> ImageScenario {
    let threshold = 128i64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut initial = ElementBag::new();
    let mut expected = ElementBag::new();
    let mut fg = 0i64;
    for idx in 0..pixels {
        // Mix of a gradient and noise so both classes appear.
        let base = (idx as i64 * 256 / pixels.max(1) as i64) % 256;
        let noise = rng.gen_range(-32i64..=32);
        let p = (base + noise).clamp(0, 255);
        initial.insert(Element::new(p, "px", idx as u64));
        let bit = i64::from(p > threshold);
        fg += bit;
        expected.insert(Element::new(bit, "seg", idx as u64));
    }
    // Count elements start as copies of the segmentation bits and reduce
    // to a single total (label 'fgpart' → 'fg').
    expected.insert(Element::pair(fg, "fg"));

    let segment = GammaProgram::new(vec![ReactionSpec::new("segment")
        .replace(Pattern::tagged("p", "px", "i"))
        .by_if(
            vec![
                ElementSpec::tagged(Expr::int(1), "seg", "i"),
                ElementSpec {
                    value: Expr::int(1),
                    label: gammaflow_gamma::spec::LabelSpec::Lit(
                        gammaflow_multiset::Symbol::intern("fgpart"),
                    ),
                    tag: TagSpec::Zero,
                },
            ],
            Expr::cmp(CmpOp::Gt, Expr::var("p"), Expr::int(threshold)),
        )
        .by_else(vec![
            ElementSpec::tagged(Expr::int(0), "seg", "i"),
            ElementSpec {
                value: Expr::int(0),
                label: gammaflow_gamma::spec::LabelSpec::Lit(gammaflow_multiset::Symbol::intern(
                    "fgpart",
                )),
                tag: TagSpec::Zero,
            },
        ])]);

    // Merge must finish before finalize may run — were they in one stage,
    // `finalize` could race ahead and promote a *partial* sum. Sequential
    // composition (`;`) is the Gamma idiom for that barrier.
    let merge = GammaProgram::new(vec![ReactionSpec::new("merge")
        .replace(Pattern::pair("a", "fgpart"))
        .replace(Pattern::pair("b", "fgpart"))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
            "fgpart",
        )])]);
    let finalize = GammaProgram::new(vec![ReactionSpec::new("finalize")
        .replace(Pattern::pair("a", "fgpart"))
        .by(vec![ElementSpec::pair(Expr::var("a"), "fg")])]);

    ImageScenario {
        pipeline: Pipeline::new(vec![segment, merge, finalize]),
        initial,
        expected,
        pixels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::seq::{run_pipeline, ExecConfig, Status};

    #[test]
    fn segmentation_and_count_are_exact() {
        for seed in [0, 5] {
            let s = scenario(seed, 64);
            let result =
                run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
            assert_eq!(result.status, Status::Stable);
            assert_eq!(result.multiset, s.expected, "seed {seed}");
        }
    }

    #[test]
    fn all_pixels_segmented() {
        let s = scenario(1, 100);
        let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
        let segs = result
            .multiset
            .iter()
            .filter(|e| e.label.as_str() == "seg")
            .count();
        assert_eq!(segs, 100);
    }

    #[test]
    fn empty_image_yields_no_foreground() {
        // 1 pixel below threshold: fg = 0 but the merge stage still needs
        // its single fgpart promoted.
        let s = ImageScenario {
            pixels: 1,
            ..scenario(0, 1)
        };
        let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
        assert!(result.multiset.iter().any(|e| e.label.as_str() == "fg"));
    }
}
