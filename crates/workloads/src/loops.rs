//! Loop-workload generators: parameterised families of the paper's Fig. 2.
//!
//! [`accumulator_loop`] regenerates the exact Example-2 shape for any
//! `(y, z, x)`; [`parallel_loops`] places several independent loops in one
//! graph (inter-loop parallelism for the PE-scaling experiment P2);
//! [`source_for`] emits the mini-C source whose frontend compilation yields
//! the same graph, tying the workload back to the paper's derivation.

use gammaflow_dataflow::graph::{DataflowGraph, GraphBuilder, OutPort};
use gammaflow_dataflow::node::{Imm, NodeKind};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag, Tag};

/// A generated loop workload with its reference output.
#[derive(Debug, Clone)]
pub struct LoopWorkload {
    /// The graph.
    pub graph: DataflowGraph,
    /// Expected outputs (label, value, exit tag).
    pub expected: ElementBag,
    /// Equivalent mini-C source (compilable by gammaflow-frontend).
    pub source: String,
}

/// The paper's Fig. 2 loop — `for (i = z; i > 0; i--) x = x + y` — with the
/// final `x` observable through the steer's false port (edge `xout`).
/// `prefix` namespaces labels so several instances can share a graph.
pub fn build_fig2_into(
    b: &mut GraphBuilder,
    y0: i64,
    z0: i64,
    x0: i64,
    prefix: &str,
) -> (i64, Tag) {
    let l = |s: &str| format!("{prefix}{s}");
    let y = b.constant_named(y0, &l("y"));
    let z = b.constant_named(z0, &l("z"));
    let x = b.constant_named(x0, &l("x"));
    let r11 = b.add_named(NodeKind::IncTag, l("R11"));
    let r12 = b.add_named(NodeKind::IncTag, l("R12"));
    let r13 = b.add_named(NodeKind::IncTag, l("R13"));
    let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), l("R14"));
    let r15 = b.add_named(NodeKind::Steer, l("R15"));
    let r16 = b.add_named(NodeKind::Steer, l("R16"));
    let r17 = b.add_named(NodeKind::Steer, l("R17"));
    let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), l("R18"));
    let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), l("R19"));
    let out = b.add_named(NodeKind::Output, l("result"));
    b.connect_labelled(y, r11, 0, &l("A1"));
    b.connect_labelled(z, r12, 0, &l("B1"));
    b.connect_labelled(x, r13, 0, &l("C1"));
    b.connect_labelled(r11, r15, 0, &l("A12"));
    b.connect_labelled(r12, r14, 0, &l("B12"));
    b.connect_labelled(r12, r16, 0, &l("B13"));
    b.connect_labelled(r13, r17, 0, &l("C12"));
    b.connect_labelled(r14, r15, 1, &l("B14"));
    b.connect_labelled(r14, r16, 1, &l("B15"));
    b.connect_labelled(r14, r17, 1, &l("B16"));
    b.connect_full(r15, OutPort::True, r11, 0, Some(&l("A11")));
    b.connect_full(r15, OutPort::True, r19, 0, Some(&l("A13")));
    b.connect_full(r16, OutPort::True, r18, 0, Some(&l("B17")));
    b.connect_full(r17, OutPort::True, r19, 1, Some(&l("C13")));
    b.connect_labelled(r18, r12, 0, &l("B11"));
    b.connect_labelled(r19, r13, 0, &l("C11"));
    b.connect_full(r17, OutPort::False, out, 0, Some(&l("xout")));

    let iterations = z0.max(0);
    (
        x0.wrapping_add(y0.wrapping_mul(iterations)),
        Tag(iterations as u64 + 1),
    )
}

/// One Fig. 2 loop as a standalone workload.
pub fn accumulator_loop(y: i64, z: i64, x: i64) -> LoopWorkload {
    let mut b = GraphBuilder::new();
    let (value, tag) = build_fig2_into(&mut b, y, z, x, "");
    let graph = b.build().expect("Fig. 2 is structurally valid");
    let expected: ElementBag = [Element::new(value, "xout", tag)].into_iter().collect();
    LoopWorkload {
        graph,
        expected,
        source: source_for(y, z, x),
    }
}

/// `count` independent Fig. 2 loops in one graph; loop `k` computes with
/// `(y+k, z, x+k)`. Inter-loop parallelism = `count`.
pub fn parallel_loops(count: usize, y: i64, z: i64, x: i64) -> LoopWorkload {
    let mut b = GraphBuilder::new();
    let mut expected = ElementBag::new();
    let mut source = String::new();
    for k in 0..count {
        let (yk, xk) = (y.wrapping_add(k as i64), x.wrapping_add(k as i64));
        let prefix = format!("L{k}_");
        let (value, tag) = build_fig2_into(&mut b, yk, z, xk, &prefix);
        expected.insert(Element::new(value, format!("{prefix}xout").as_str(), tag));
        source.push_str(&source_for(yk, z, xk));
        source.push('\n');
    }
    LoopWorkload {
        graph: b.build().expect("valid by construction"),
        expected,
        source,
    }
}

/// Mini-C source equivalent to one Fig. 2 instance.
pub fn source_for(y: i64, z: i64, x: i64) -> String {
    format!(
        "int y = {y}; int z = {z}; int x = {x}; for (i = z; i > 0; i--) {{ x = x + y; }} output x;"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::engine::SeqEngine;
    use gammaflow_dataflow::engine_par::{run_parallel, ParEngineConfig};

    #[test]
    fn accumulator_matches_reference() {
        for (y, z, x) in [(5, 3, 10), (2, 0, 7), (-3, 5, 100)] {
            let w = accumulator_loop(y, z, x);
            let result = SeqEngine::new(&w.graph).run().unwrap();
            assert_eq!(result.outputs, w.expected, "y={y} z={z} x={x}");
        }
    }

    #[test]
    fn parallel_loops_all_produce() {
        let w = parallel_loops(6, 2, 4, 0);
        let result = SeqEngine::new(&w.graph).run().unwrap();
        assert_eq!(result.outputs, w.expected);
        assert_eq!(result.outputs.len(), 6);
        // Independent loops: first wave fires all 6×3 inctags together.
        assert_eq!(result.profile[0], 18);
    }

    #[test]
    fn parallel_loops_on_multi_pe_engine() {
        let w = parallel_loops(4, 3, 10, 1);
        let result = run_parallel(&w.graph, &ParEngineConfig::with_pes(4)).unwrap();
        assert_eq!(result.run.outputs, w.expected);
    }

    #[test]
    fn source_compiles_to_equivalent_graph() {
        let w = accumulator_loop(5, 3, 10);
        let g = gammaflow_frontend::compile(&w.source).unwrap();
        let result = SeqEngine::new(&g).run().unwrap();
        // Frontend labels differ ('x' vs 'xout') but value and tag agree.
        let ours = w.expected.sorted_elements();
        let theirs = result.outputs.sorted_elements();
        assert_eq!(ours.len(), theirs.len());
        assert_eq!(ours[0].value, theirs[0].value);
        assert_eq!(ours[0].tag, theirs[0].tag);
        // And the graphs are isomorphic (up to commutative operand order:
        // the paper draws y into the adder's first port, the frontend
        // compiles `x + y` with x first).
        assert!(gammaflow_dataflow::iso::isomorphic_commutative(
            &w.graph, &g
        ));
    }
}
