//! Guard-heavy join workloads exercising the rete matcher's partial-match
//! memory and guard pushdown.
//!
//! The classic repertoire ([`crate::classic`]) is dominated by 2-ary
//! reactions whose conditions involve both variables at once, so a join
//! network can only filter at the terminal level. The families here are
//! chosen to stress what the classics do not:
//!
//! * [`divisor_sieve`] — the primes sieve with a *conjunctive* guard
//!   (`x % y == 0 and x > y`), the decomposition smoke test;
//! * [`triangles`] — 3-ary triangle counting over encoded edge elements,
//!   where the `b`-consistency conjunct binds after two positions and is
//!   pushed below the third join: without pushdown the matcher enumerates
//!   the full |E|³ cross product, with it only path prefixes survive;
//! * [`interval_merge`] — interval union by repeated pairwise merging,
//!   a confluent reaction whose overlap condition splits into two
//!   comparisons;
//! * [`cross_sum`] — the adversarial *unguarded* n² fold whose full
//!   cross product would blow the beta memory: the spill-watermark
//!   regression workload (harness `S3`).
//!
//! Every workload is self-checking (a [`Workload`] with its expected
//! stable multiset) and confluent by construction — [`triangles`] keeps
//! its triangles vertex-disjoint so greedy removal is order-independent —
//! which is what lets the `S2` harness assert byte-identical finals
//! across the `Rescan`/`Delta`/`Rete` engines under any selection policy.

use crate::classic::Workload;
use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{ElementSpec, GammaProgram, Pattern, ReactionSpec};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Element, ElementBag};

/// The primes sieve with a conjunctive guard: `replace x, y by y where
/// x % y == 0 and x > y` over `{2..=n}`. Same fixpoint as
/// [`crate::classic::primes`] (the primes), but the condition decomposes
/// into two conjuncts for the guard-analysis pass.
pub fn divisor_sieve(n: i64) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("divsieve")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .where_(Expr::and(
            Expr::cmp(
                CmpOp::Eq,
                Expr::bin(BinOp::Rem, Expr::var("x"), Expr::var("y")),
                Expr::int(0),
            ),
            Expr::cmp(CmpOp::Gt, Expr::var("x"), Expr::var("y")),
        ))
        .by(vec![ElementSpec::pair(Expr::var("y"), "n")])]);
    let initial: ElementBag = (2..=n).map(|v| Element::pair(v, "n")).collect();
    let expected: ElementBag = (2..=n)
        .filter(|&v| (2..v).all(|d| v % d != 0))
        .map(|v| Element::pair(v, "n"))
        .collect();
    Workload {
        name: "divisor_sieve",
        program,
        initial,
        expected,
    }
}

/// Adversarial cross-product workload for the rete spill watermark: an
/// *unguarded* 2-ary sum fold over `n` distinct elements.
///
/// Every ordered pair is enabled, so an unbounded join network memorises
/// all `n·(n-1)` terminal tokens before the first firing — the worst
/// case that kept `Scheduling::Rete` opt-in before beta-memory eviction
/// landed. Past the watermark the terminal level demotes to virtual and
/// the network keeps only the `n`-token level-0 frontier, completing
/// matches by index search on demand; the harness `S3` step records the
/// peak token count alongside the three engines' throughput.
pub fn cross_sum(n: i64) -> Workload {
    let program = GammaProgram::new(vec![ReactionSpec::new("xsum")
        .replace(Pattern::pair("x", "n"))
        .replace(Pattern::pair("y", "n"))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("y")),
            "n",
        )])]);
    let initial: ElementBag = (1..=n).map(|v| Element::pair(v, "n")).collect();
    let expected: ElementBag = [Element::pair(n * (n + 1) / 2, "n")].into_iter().collect();
    Workload {
        name: "cross_sum",
        program,
        initial,
        expected,
    }
}

/// Node-id base for edge encoding: edge `(u, v)` with `u < v < ENC`
/// becomes the value `u * ENC + v` on label `e`.
const ENC: i64 = 1000;

fn edge(u: i64, v: i64) -> Element {
    debug_assert!(u < v && v < ENC);
    Element::pair(u * ENC + v, "e")
}

/// Triangle counting by greedy removal: a 3-ary reaction consumes the
/// canonically encoded edges `(a,b)`, `(b,c)`, `(a,c)` of a triangle
/// (`a < b < c`) and produces one `tri` marker carrying
/// `a·ENC² + b·ENC + c`.
///
/// The instance has `k` vertex-disjoint triangles plus `noise` star edges
/// around a hub (stars contain no triangle), so exactly the `k` triangles
/// fire — in any order, under any engine — and the stars survive.
///
/// The vertex-consistency condition decomposes into three conjuncts; the
/// first (`ab % ENC == bc / ENC`) is fully bound after two join levels and
/// is pushed below the third, which is the pushdown case the 2-ary
/// classics cannot exercise.
pub fn triangles(k: usize, noise: usize) -> Workload {
    assert!(k <= 100, "triangle nodes are allocated below the hub range");
    assert!(noise < 99, "noise leaves live in 901..ENC");
    let var = Expr::var;
    let div = |a: Expr, b: i64| Expr::bin(BinOp::Div, a, Expr::int(b));
    let rem = |a: Expr, b: i64| Expr::bin(BinOp::Rem, a, Expr::int(b));
    let eq = |a: Expr, b: Expr| Expr::cmp(CmpOp::Eq, a, b);

    let program = GammaProgram::new(vec![ReactionSpec::new("tri")
        .replace(Pattern::pair("ab", "e"))
        .replace(Pattern::pair("bc", "e"))
        .replace(Pattern::pair("ac", "e"))
        .where_(Expr::and(
            Expr::and(
                // b-consistency: bound after (ab, bc) — pushed to level 1.
                eq(rem(var("ab"), ENC), div(var("bc"), ENC)),
                // a-consistency: needs ac — level 2.
                eq(div(var("ab"), ENC), div(var("ac"), ENC)),
            ),
            // c-consistency: needs bc and ac — level 2.
            eq(rem(var("bc"), ENC), rem(var("ac"), ENC)),
        ))
        .by(vec![ElementSpec::pair(
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, div(var("ab"), ENC), Expr::int(ENC * ENC)),
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, rem(var("ab"), ENC), Expr::int(ENC)),
                    rem(var("bc"), ENC),
                ),
            ),
            "tri",
        )])]);

    let mut initial = ElementBag::new();
    let mut expected = ElementBag::new();
    for i in 0..k as i64 {
        let (a, b, c) = (3 * i, 3 * i + 1, 3 * i + 2);
        initial.insert(edge(a, b));
        initial.insert(edge(b, c));
        initial.insert(edge(a, c));
        expected.insert(Element::pair(a * ENC * ENC + b * ENC + c, "tri"));
    }
    // Star noise: hub 900 fanning out to 901.. — plenty of shared-vertex
    // pairs for the join to chew on, but no closing edges.
    let hub = 900;
    for j in 0..noise as i64 {
        let leaf = edge(hub, hub + 1 + j);
        initial.insert(leaf.clone());
        expected.insert(leaf);
    }
    Workload {
        name: "triangles",
        program,
        initial,
        expected,
    }
}

/// Endpoint base for interval encoding: `[lo, hi]` with
/// `0 <= lo <= hi < IVB` becomes the value `lo * IVB + hi` on label `iv`.
const IVB: i64 = 10_000;

/// Interval union: two overlapping (or touching, endpoints inclusive)
/// intervals merge into their hull until only maximal disjoint intervals
/// remain. Confluent: merging contiguous overlaps is order-independent.
/// The overlap test `lo_a <= hi_b and lo_b <= hi_a` decomposes into two
/// conjuncts over the packed encoding.
pub fn interval_merge(intervals: &[(i64, i64)]) -> Workload {
    assert!(intervals
        .iter()
        .all(|&(lo, hi)| 0 <= lo && lo <= hi && hi < IVB));
    let lo = |v: &str| Expr::bin(BinOp::Div, Expr::var(v), Expr::int(IVB));
    let hi = |v: &str| Expr::bin(BinOp::Rem, Expr::var(v), Expr::int(IVB));

    let program = GammaProgram::new(vec![ReactionSpec::new("merge")
        .replace(Pattern::pair("a", "iv"))
        .replace(Pattern::pair("b", "iv"))
        .where_(Expr::and(
            Expr::cmp(CmpOp::Le, lo("a"), hi("b")),
            Expr::cmp(CmpOp::Le, lo("b"), hi("a")),
        ))
        .by(vec![ElementSpec::pair(
            Expr::bin(
                BinOp::Add,
                Expr::bin(
                    BinOp::Mul,
                    Expr::bin(BinOp::Min, lo("a"), lo("b")),
                    Expr::int(IVB),
                ),
                Expr::bin(BinOp::Max, hi("a"), hi("b")),
            ),
            "iv",
        )])]);

    let initial: ElementBag = intervals
        .iter()
        .map(|&(lo, hi)| Element::pair(lo * IVB + hi, "iv"))
        .collect();

    // Host-side reference: classic sweep-line merge (touching counts).
    let mut sorted: Vec<(i64, i64)> = intervals.to_vec();
    sorted.sort_unstable();
    let mut merged: Vec<(i64, i64)> = Vec::new();
    for (lo, hi) in sorted {
        match merged.last_mut() {
            Some((_, mhi)) if lo <= *mhi => *mhi = (*mhi).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    let expected: ElementBag = merged
        .iter()
        .map(|&(lo, hi)| Element::pair(lo * IVB + hi, "iv"))
        .collect();
    Workload {
        name: "interval_merge",
        program,
        initial,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{
        run_parallel, ExecConfig, ParConfig, Scheduling, Selection, SeqInterpreter, Status,
    };

    fn run_scheduling(w: &Workload, scheduling: Scheduling, selection: Selection) {
        let result = SeqInterpreter::with_config(
            &w.program,
            w.initial.clone(),
            ExecConfig {
                selection,
                scheduling,
                ..ExecConfig::default()
            },
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(result.status, Status::Stable, "{} diverged", w.name);
        assert_eq!(
            result.multiset, w.expected,
            "{} wrong under {scheduling:?}/{selection:?}",
            w.name
        );
    }

    fn run_all_engines(w: &Workload) {
        for scheduling in [Scheduling::Rescan, Scheduling::Delta, Scheduling::Rete] {
            run_scheduling(w, scheduling, Selection::Deterministic);
            run_scheduling(w, scheduling, Selection::Seeded(7));
        }
    }

    #[test]
    fn divisor_sieve_finds_primes_under_every_engine() {
        run_all_engines(&divisor_sieve(60));
    }

    #[test]
    fn cross_sum_collapses_to_total_under_every_engine() {
        run_all_engines(&cross_sum(48));
    }

    #[test]
    fn triangles_fire_exactly_once_each() {
        run_all_engines(&triangles(5, 8));
    }

    #[test]
    fn intervals_merge_to_maximal_spans() {
        run_all_engines(&interval_merge(&[
            (1, 3),
            (2, 6),
            (8, 10),
            (10, 12),
            (20, 25),
            (24, 24),
            (30, 30),
        ]));
    }

    #[test]
    fn duplicate_intervals_collapse() {
        run_all_engines(&interval_merge(&[(5, 9), (5, 9), (9, 11)]));
    }

    #[test]
    fn triangle_workload_runs_in_parallel_engine() {
        let w = triangles(4, 6);
        let result =
            run_parallel(&w.program, w.initial.clone(), &ParConfig::with_workers(4)).unwrap();
        assert_eq!(result.exec.status, Status::Stable);
        assert_eq!(result.exec.multiset, w.expected);
    }

    #[test]
    fn divisor_sieve_matches_classic_primes() {
        let a = divisor_sieve(80);
        let b = crate::classic::primes(80);
        assert_eq!(a.expected, b.expected);
    }
}
