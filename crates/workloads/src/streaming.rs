//! Streaming workloads: input arrives in **waves**, not as one fixed
//! initial multiset.
//!
//! The paper states the Gamma/dataflow equivalence over a fixed multiset,
//! but the production target serves continuous traffic; these workloads
//! exercise the [`Session`](gammaflow_gamma::Session) lifecycle — reach
//! steady state, inject a wave, resume — and are the basis of harness
//! step `S5` (`BENCH_streaming.json`), which measures session-resume
//! against rebuild-per-wave.
//!
//! The headline family is [`rolling_topk`]: a fixed-size `top` set
//! maintained against an ever-growing `cand` history. It is built so the
//! *stable* multiset keeps growing (every retired candidate stays in the
//! bag under a consumed label), which is exactly the regime where
//! rebuilding matcher state per wave costs O(history) while a resumed
//! session pays only O(wave).

use crate::classic::Workload;
use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{ElementSpec, GammaProgram, Pattern, ReactionSpec};
use gammaflow_multiset::value::CmpOp;
use gammaflow_multiset::{Element, ElementBag};
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A self-checking streaming workload: the program, the seed multiset,
/// the injection waves, and the expected stable multiset after **all**
/// waves have been absorbed.
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    /// Descriptive name.
    pub name: String,
    /// The program.
    pub program: GammaProgram,
    /// The multiset the session starts from (wave 0 runs on it alone).
    pub initial: ElementBag,
    /// The injection waves, in arrival order.
    pub waves: Vec<Vec<Element>>,
    /// The expected stable multiset once every wave has been injected
    /// and run to stability — byte-identical for any engine and any
    /// wave/one-shot split, because the program is confluent and a
    /// reaction's enabledness depends only on its consumed tuple.
    pub expected: ElementBag,
}

impl StreamingWorkload {
    /// The merged bag: `initial` plus every wave — the one-shot
    /// reference input ([`expected`](StreamingWorkload::expected) is its
    /// stable state too).
    pub fn merged(&self) -> ElementBag {
        let mut bag = self.initial.clone();
        for wave in &self.waves {
            for e in wave {
                bag.insert(e.clone());
            }
        }
        bag
    }

    /// View as a one-shot [`Workload`] over the merged bag (for engines
    /// and harness helpers that expect one).
    pub fn as_one_shot(&self) -> Workload {
        Workload {
            name: "streaming_merged",
            program: self.program.clone(),
            initial: self.merged(),
            expected: self.expected.clone(),
        }
    }
}

/// Rolling top-k over a candidate stream:
///
/// ```text
/// swap = replace [x,'top'], [y,'cand'] where y > x
///        by [y,'top'], [x,'cand']
/// ```
///
/// The bag holds exactly `k` elements labelled `top` (seeded with `k`
/// zeros) and an ever-growing history labelled `cand`. Every swap
/// strictly increases the sum of the `top` values, so the program
/// terminates; at stability no candidate exceeds any top element, so
/// the `top` multiset is exactly the `k` largest values seen — a unique
/// stable state even under value ties (the split of a boundary value
/// between labels is forced by the count of strictly larger values).
///
/// `waves` waves of `per_wave` pseudo-random candidate values (strictly
/// positive, so the zero seeds always wash out of `top` once `k` real
/// candidates arrived) are drawn from a seeded ChaCha8 stream.
///
/// Why this shape stresses rebuild-per-wave: retired candidates stay in
/// the bag under the *consumed* `cand` label, so a fresh matcher build
/// re-enumerates the `top × cand` join against the whole history every
/// wave — O(k · history) — while a resumed session's network only
/// processes the wave's insertion delta — O(k · per_wave).
pub fn rolling_topk(k: usize, waves: usize, per_wave: usize, seed: u64) -> StreamingWorkload {
    assert!(k > 0 && waves > 0 && per_wave > 0);
    assert!(
        waves * per_wave >= k,
        "need at least k candidates so the zero seeds wash out"
    );
    let program = GammaProgram::new(vec![ReactionSpec::new("swap")
        .replace(Pattern::pair("x", "top"))
        .replace(Pattern::pair("y", "cand"))
        .where_(Expr::cmp(CmpOp::Gt, Expr::var("y"), Expr::var("x")))
        .by(vec![
            ElementSpec::pair(Expr::var("y"), "top"),
            ElementSpec::pair(Expr::var("x"), "cand"),
        ])]);

    let mut initial = ElementBag::new();
    initial.insert_n(Element::pair(0, "top"), k);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let wave_elems: Vec<Vec<Element>> = (0..waves)
        .map(|_| {
            (0..per_wave)
                .map(|_| Element::pair((rng.next_u64() % 1_000_000) as i64 + 1, "cand"))
                .collect()
        })
        .collect();

    // Reference final: sort every value ever present (candidates plus the
    // k zero seeds) descending; the k largest carry 'top', the rest 'cand'.
    let mut values: Vec<i64> = wave_elems
        .iter()
        .flatten()
        .map(|e| e.value.as_int().expect("integer candidates"))
        .collect();
    values.extend(std::iter::repeat_n(0i64, k));
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut expected = ElementBag::new();
    for (i, v) in values.iter().enumerate() {
        if i < k {
            expected.insert(Element::pair(*v, "top"));
        } else {
            expected.insert(Element::pair(*v, "cand"));
        }
    }

    StreamingWorkload {
        name: format!("rolling_topk_k{k}_{waves}x{per_wave}"),
        program,
        initial,
        waves: wave_elems,
        expected,
    }
}

/// Windowed sums over a tag-partitioned stream:
///
/// ```text
/// wsum = replace [a,'x',t], [b,'x',t] by [a+b,'x',t]
/// ```
///
/// Each wave delivers `windows_per_wave` fresh windows (distinct tags) of
/// `per_window` readings each; within a window the pairwise fold
/// collapses them to one total, which **stays in the bag forever** under
/// the consumed label `x`. Collapsing a window of `m` readings takes
/// exactly `m − 1` firings under *any* schedule, and integer addition is
/// associative-commutative, so both the firing count and the final
/// multiset are schedule-independent — which is what lets harness `S5`
/// compare a seeded resumed session against seeded rebuilt interpreters
/// firing-for-firing.
///
/// Why this shape stresses rebuild-per-wave: after `w` waves the stable
/// bag holds `w · windows_per_wave` window totals, every one of them
/// matching the reaction's patterns, so a fresh matcher build
/// materialises O(history) alpha/beta tokens before the first new firing
/// — while a resumed session's network only absorbs the wave's
/// `windows_per_wave · per_window` insertions.
pub fn windowed_sum(
    waves: usize,
    windows_per_wave: usize,
    per_window: usize,
    seed: u64,
) -> StreamingWorkload {
    assert!(waves > 0 && windows_per_wave > 0 && per_window >= 2);
    let program = GammaProgram::new(vec![ReactionSpec::new("wsum")
        .replace(Pattern::tagged("a", "x", "t"))
        .replace(Pattern::tagged("b", "x", "t"))
        .by(vec![ElementSpec::tagged(
            Expr::bin(
                gammaflow_multiset::value::BinOp::Add,
                Expr::var("a"),
                Expr::var("b"),
            ),
            "x",
            "t",
        )])]);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut expected = ElementBag::new();
    let wave_elems: Vec<Vec<Element>> = (0..waves)
        .map(|w| {
            let mut wave = Vec::with_capacity(windows_per_wave * per_window);
            for i in 0..windows_per_wave {
                let tag = (w * windows_per_wave + i) as u64;
                let mut total = 0i64;
                for _ in 0..per_window {
                    let v = (rng.next_u64() % 10_000) as i64;
                    total += v;
                    wave.push(Element::new(v, "x", tag));
                }
                expected.insert(Element::new(total, "x", tag));
            }
            wave
        })
        .collect();

    StreamingWorkload {
        name: format!("windowed_sum_{waves}x{windows_per_wave}w{per_window}"),
        program,
        initial: ElementBag::new(),
        waves: wave_elems,
        expected,
    }
}

/// Bursty arrivals over a draining fold — the backpressure workload:
///
/// ```text
/// wsum = replace [a,'x',t], [b,'x',t] by [a+b,'x',t]
/// ```
///
/// Each wave is one **burst**: `burst_size` readings under a single
/// fresh tag. A wave's burst collapses to a single window total
/// (`burst_size − 1` firings, any schedule), so the live bag swings from
/// `burst_size + history` down to `history + 1` every cycle — the shape
/// that exercises [`EngineConfig::bag_budget`](gammaflow_gamma::EngineConfig::bag_budget)
/// admission: a budget smaller than `burst_size` forces
/// [`InjectOutcome::Spilled`](gammaflow_gamma::InjectOutcome) overflow
/// that the driver must re-inject after a draining wave, and because a
/// reaction's enabledness depends only on its consumed tuple, the
/// deferred arrivals land on the same stable multiset (the `expected`
/// field) as unbounded injection.
pub fn burst_drain(bursts: usize, burst_size: usize, seed: u64) -> StreamingWorkload {
    assert!(bursts > 0 && burst_size >= 2);
    let program = GammaProgram::new(vec![ReactionSpec::new("wsum")
        .replace(Pattern::tagged("a", "x", "t"))
        .replace(Pattern::tagged("b", "x", "t"))
        .by(vec![ElementSpec::tagged(
            Expr::bin(
                gammaflow_multiset::value::BinOp::Add,
                Expr::var("a"),
                Expr::var("b"),
            ),
            "x",
            "t",
        )])]);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut expected = ElementBag::new();
    let wave_elems: Vec<Vec<Element>> = (0..bursts)
        .map(|w| {
            let tag = w as u64;
            let mut total = 0i64;
            let wave: Vec<Element> = (0..burst_size)
                .map(|_| {
                    let v = (rng.next_u64() % 10_000) as i64;
                    total += v;
                    Element::new(v, "x", tag)
                })
                .collect();
            expected.insert(Element::new(total, "x", tag));
            wave
        })
        .collect();

    StreamingWorkload {
        name: format!("burst_drain_{bursts}x{burst_size}"),
        program,
        initial: ElementBag::new(),
        waves: wave_elems,
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{Selection, SeqInterpreter, Session, Status};

    #[test]
    fn one_shot_merged_reaches_expected() {
        let w = rolling_topk(8, 3, 16, 7);
        let result = SeqInterpreter::with_seed(&w.program, w.merged(), 3)
            .run()
            .unwrap();
        assert_eq!(result.status, Status::Stable);
        assert_eq!(result.multiset, w.expected);
    }

    #[test]
    fn session_waves_reach_expected() {
        let w = rolling_topk(8, 4, 16, 11);
        let mut session = Session::build(&w.program)
            .selection(Selection::Deterministic)
            .start(w.initial.clone())
            .unwrap();
        session.run_to_stable().unwrap();
        for wave in &w.waves {
            let _ = session.inject(wave.iter().cloned());
            let wv = session.run_to_stable().unwrap();
            assert_eq!(wv.status, Status::Stable);
        }
        assert_eq!(session.finish().multiset, w.expected);
    }

    #[test]
    fn windowed_sum_firings_are_schedule_independent() {
        let w = windowed_sum(3, 4, 5, 13);
        let expected_firings = (3 * 4 * (5 - 1)) as u64;
        // One-shot merged, several seeds: same firing count, same final.
        for seed in 0..3 {
            let result = SeqInterpreter::with_seed(&w.program, w.merged(), seed)
                .run()
                .unwrap();
            assert_eq!(result.status, Status::Stable);
            assert_eq!(result.stats.firings_total(), expected_firings);
            assert_eq!(result.multiset, w.expected);
        }
        // Session waves: same totals.
        let mut session = Session::build(&w.program).start(w.initial.clone()).unwrap();
        for wave in &w.waves {
            let _ = session.inject(wave.iter().cloned());
            session.run_to_stable().unwrap();
        }
        let result = session.finish();
        assert_eq!(result.stats.firings_total(), expected_firings);
        assert_eq!(result.multiset, w.expected);
    }

    #[test]
    fn burst_drain_collapses_each_burst_to_its_total() {
        let w = burst_drain(4, 8, 17);
        assert_eq!(w.waves.len(), 4);
        let result = SeqInterpreter::with_seed(&w.program, w.merged(), 5)
            .run()
            .unwrap();
        assert_eq!(result.status, Status::Stable);
        assert_eq!(result.multiset, w.expected);
        assert_eq!(result.stats.firings_total(), (4 * (8 - 1)) as u64);
    }

    #[test]
    fn boundary_ties_have_a_unique_final() {
        // Hand-built tie at the k-boundary: k = 2, values {5, 5, 5, 1}.
        // Exactly two 5s end in 'top'; one 5 and the 1 (and the zero
        // seeds) end in 'cand', whichever copies swapped.
        let program = rolling_topk(2, 1, 2, 0).program;
        let mut initial = ElementBag::new();
        initial.insert_n(Element::pair(0, "top"), 2);
        for v in [5i64, 5, 5, 1] {
            initial.insert(Element::pair(v, "cand"));
        }
        let mut expected = ElementBag::new();
        expected.insert_n(Element::pair(5, "top"), 2);
        expected.insert(Element::pair(5, "cand"));
        expected.insert(Element::pair(1, "cand"));
        expected.insert_n(Element::pair(0, "cand"), 2);
        for seed in 0..4 {
            let result = SeqInterpreter::with_seed(&program, initial.clone(), seed)
                .run()
                .unwrap();
            assert_eq!(result.multiset, expected, "seed {seed}");
        }
    }
}
