//! `gammad` — a multi-tenant session service.
//!
//! [`gammaflow_gamma::Session`] is the per-stream unit of execution:
//! build-once matcher state, incremental input waves, snapshot/restore,
//! and injection backpressure. This crate multiplexes *thousands* of
//! them — one per tenant/stream — over shared process resources:
//!
//! * **One parked-worker pool.** Every parallel-engine session leases
//!   wave workers from the process-wide [`WorkerPool`] instead of spawning
//!   threads per wave, which is what makes thousands of concurrent
//!   small-wave sessions viable (see harness step S10).
//! * **A tenant registry with fair wave scheduling.** Injects enqueue
//!   their tenant on a FIFO ready queue; any number of driver threads
//!   call [`ServiceRuntime::run_next_wave`] and each runs exactly one
//!   tenant's wave to stability. FIFO ordering means a chatty tenant
//!   cannot starve a quiet one — each ready tenant gets one wave per
//!   pass.
//! * **Per-tenant bag budgets as backpressure.** Injection beyond a
//!   tenant's budget comes back as [`InjectOutcome::Spilled`]; the
//!   caller queues, sheds, or retries after a draining wave. The
//!   semantics callers rely on are pinned by the session layer:
//!   admission is measured against the *live bag* only, regardless of
//!   the session's last wave status.
//! * **Idle eviction with transparent restore.** An idle session can be
//!   evicted to a [`SessionSnapshot`] (configuration, multiset, RNG
//!   position, counters); the next inject restores it in place and the
//!   stream continues byte-identically — the composition soundness is
//!   the Generalized Kahn Principle: independently progressing
//!   stream-connected engines interleave without changing any one
//!   stream's semantics.
//! * **Aggregated observability.** [`ServiceRuntime::metrics`] merges
//!   every session's registry into one scrape page keyed by `tenant`,
//!   and a shared JSONL trace file tags each record with its tenant so
//!   interleaved traces stay diffable per stream (`gamma-inspect
//!   --tenant`).

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use gammaflow_gamma::spec::GammaProgram;
use gammaflow_gamma::{
    EngineConfig, ExecError, ExecResult, InjectOutcome, MetricsRegistry, Session, SessionSnapshot,
    Status, Telemetry, TraceRecord, TraceSink, Wave, WaveDispatch, WorkerPool,
};
use gammaflow_multiset::{Element, ElementBag, FxHashMap};

/// Service-level configuration.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Default per-tenant bag budget applied when a tenant's
    /// [`EngineConfig::bag_budget`] is unlimited. Unlimited by default.
    pub default_bag_budget: u64,
    /// Path of the multiplexed tenant-tagged JSONL trace file. `None`
    /// (default) disables service-side tracing; tenants may still carry
    /// their own sinks.
    pub trace_path: Option<String>,
    /// Wave dispatch applied to every tenant session:
    /// [`WaveDispatch::default`] leases from the process-wide parked
    /// pool.
    pub dispatch: WaveDispatch,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            default_bag_budget: u64::MAX,
            trace_path: None,
            dispatch: WaveDispatch::default(),
        }
    }
}

/// Errors surfaced by [`ServiceRuntime`] operations.
#[derive(Debug)]
pub enum ServiceError {
    /// The tenant id is not registered.
    UnknownTenant(String),
    /// The tenant id is already registered.
    DuplicateTenant(String),
    /// A session operation failed (compile error, runtime action
    /// failure, snapshot mismatch). The tenant's session is unusable;
    /// deregister it.
    Exec(ExecError),
    /// The service trace file could not be created.
    Trace(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServiceError::DuplicateTenant(t) => write!(f, "tenant {t:?} already registered"),
            ServiceError::Exec(e) => write!(f, "session error: {e}"),
            ServiceError::Trace(e) => write!(f, "service trace sink: {e}"),
        }
    }
}
impl std::error::Error for ServiceError {}

impl From<ExecError> for ServiceError {
    fn from(e: ExecError) -> Self {
        ServiceError::Exec(e)
    }
}

/// The record returned by [`ServiceRuntime::run_next_wave`].
#[derive(Debug)]
pub struct WaveReport {
    /// Which tenant's wave ran.
    pub tenant: String,
    /// The wave record ([`Wave::status`] is
    /// [`Status::BudgetExhausted`] when the tenant needs a budget grant
    /// to continue; the tenant is *not* requeued in that case).
    pub wave: Wave,
}

/// A tenant session, resident or evicted.
enum SlotState {
    Resident(Box<Session>),
    /// Evicted to a snapshot; restored transparently on the next
    /// inject (or on [`ServiceRuntime::finish`]).
    Evicted(Box<SessionSnapshot>),
    /// Transient marker while ownership moves between states.
    Poisoned,
}

struct TenantSlot {
    program: GammaProgram,
    state: SlotState,
    /// Guards against double-queueing on the ready list.
    queued: bool,
    /// Service tick of the last inject/wave touching this tenant.
    last_active: u64,
    evictions: u64,
    restores: u64,
    /// Elements bounced by the bag budget across all injects.
    spilled_total: u64,
}

impl TenantSlot {
    /// Make the slot resident, restoring from its snapshot if needed,
    /// and return the live session.
    fn session(&mut self, dispatch: &WaveDispatch) -> Result<&mut Session, ServiceError> {
        if let SlotState::Evicted(_) = self.state {
            let SlotState::Evicted(snap) = std::mem::replace(&mut self.state, SlotState::Poisoned)
            else {
                unreachable!()
            };
            let mut session = Session::restore(&self.program, *snap)?;
            // Dispatch is process-local and never snapshotted; re-apply
            // the service's choice.
            session.set_wave_dispatch(dispatch.clone());
            self.state = SlotState::Resident(Box::new(session));
            self.restores += 1;
        }
        match &mut self.state {
            SlotState::Resident(s) => Ok(s),
            SlotState::Evicted(_) | SlotState::Poisoned => {
                unreachable!("slot made resident above")
            }
        }
    }
}

/// A shared line-oriented JSONL writer for the multiplexed trace file.
struct SharedJsonl {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl SharedJsonl {
    fn create(path: &str) -> Result<SharedJsonl, ServiceError> {
        let file = std::fs::File::create(path)
            .map_err(|e| ServiceError::Trace(format!("cannot create {path}: {e}")))?;
        Ok(SharedJsonl {
            out: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    fn line(&self, s: &str) {
        let mut out = self.out.lock().expect("trace writer poisoned");
        let _ = writeln!(out, "{s}");
    }

    fn flush(&self) {
        let mut out = self.out.lock().expect("trace writer poisoned");
        let _ = out.flush();
    }
}

/// A [`TraceSink`] that prefixes every record with its tenant id and
/// appends it to the shared service trace file. The splice keeps each
/// line parseable as a plain [`TraceRecord`] (unknown keys are ignored
/// on deserialize), so existing tooling reads a multiplexed file
/// unchanged and `gamma-inspect --tenant` filters it per stream.
struct TenantSink {
    /// The tenant id pre-serialized as a JSON string literal.
    tenant_json: String,
    out: Arc<SharedJsonl>,
}

impl TraceSink for TenantSink {
    fn record(&self, record: &TraceRecord) {
        let Ok(line) = serde_json::to_string(record) else {
            return;
        };
        debug_assert!(line.starts_with('{'));
        let body = &line[1..];
        let mut s = String::with_capacity(line.len() + self.tenant_json.len() + 12);
        s.push_str("{\"tenant\":");
        s.push_str(&self.tenant_json);
        if body != "}" {
            s.push(',');
        }
        s.push_str(body);
        self.out.line(&s);
    }

    fn flush(&self) {
        self.out.flush();
    }
}

/// The multi-tenant session service: tenant registry, inject API, fair
/// wave scheduling, eviction, and aggregated observability. All methods
/// take `&self`; the runtime is `Sync` and any number of threads may
/// inject and drive waves concurrently (distinct tenants proceed in
/// parallel; one tenant's operations serialize on its slot).
pub struct ServiceRuntime {
    config: ServiceConfig,
    tenants: RwLock<FxHashMap<String, Arc<Mutex<TenantSlot>>>>,
    /// FIFO of tenants with admitted-but-unprocessed input.
    ready: Mutex<VecDeque<String>>,
    /// Monotonic operation counter; idle-ness is measured in ticks.
    tick: AtomicU64,
    /// Cumulative waves run across all tenants.
    waves_total: AtomicU64,
    /// Cumulative injects across all tenants.
    injects_total: AtomicU64,
    trace: Option<Arc<SharedJsonl>>,
}

impl ServiceRuntime {
    /// A service with the given configuration. Fails only when the
    /// configured trace file cannot be created.
    pub fn new(config: ServiceConfig) -> Result<ServiceRuntime, ServiceError> {
        let trace = match &config.trace_path {
            Some(path) => Some(Arc::new(SharedJsonl::create(path)?)),
            None => None,
        };
        Ok(ServiceRuntime {
            config,
            tenants: RwLock::new(FxHashMap::default()),
            ready: Mutex::new(VecDeque::new()),
            tick: AtomicU64::new(0),
            waves_total: AtomicU64::new(0),
            injects_total: AtomicU64::new(0),
            trace,
        })
    }

    /// A service with default configuration.
    pub fn with_defaults() -> ServiceRuntime {
        ServiceRuntime::new(ServiceConfig::default()).expect("no trace file to fail on")
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    fn slot(&self, tenant: &str) -> Result<Arc<Mutex<TenantSlot>>, ServiceError> {
        self.tenants
            .read()
            .expect("tenant registry poisoned")
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))
    }

    /// Register `tenant` running `program` over `initial`, with
    /// `config` shaping its engine. The service applies its default bag
    /// budget (when the config leaves it unlimited), the shared wave
    /// dispatch, and — when a trace path is configured — a
    /// tenant-tagging sink.
    ///
    /// A tenant with initial work is immediately ready.
    pub fn register(
        &self,
        tenant: &str,
        program: &GammaProgram,
        mut config: EngineConfig,
        initial: ElementBag,
    ) -> Result<(), ServiceError> {
        if config.bag_budget == u64::MAX {
            config.bag_budget = self.config.default_bag_budget;
        }
        if let Some(out) = &self.trace {
            config.telemetry = Telemetry::to_sink(Arc::new(TenantSink {
                tenant_json: serde_json::to_string(&tenant.to_string())
                    .unwrap_or_else(|_| "\"?\"".to_string()),
                out: out.clone(),
            }));
        }
        let has_work = !initial.is_empty();
        let session = Session::build(program)
            .config(config)
            .wave_dispatch(self.config.dispatch.clone())
            .start(initial)?;
        let slot = TenantSlot {
            program: program.clone(),
            state: SlotState::Resident(Box::new(session)),
            queued: false,
            last_active: self.next_tick(),
            evictions: 0,
            restores: 0,
            spilled_total: 0,
        };
        {
            let mut tenants = self.tenants.write().expect("tenant registry poisoned");
            if tenants.contains_key(tenant) {
                return Err(ServiceError::DuplicateTenant(tenant.to_string()));
            }
            tenants.insert(tenant.to_string(), Arc::new(Mutex::new(slot)));
        }
        if has_work {
            self.enqueue_locked_slot(tenant, &self.slot(tenant)?);
        }
        Ok(())
    }

    /// Mark a tenant ready, coalescing duplicates via its `queued` flag.
    fn enqueue_locked_slot(&self, tenant: &str, slot: &Arc<Mutex<TenantSlot>>) {
        let mut guard = slot.lock().expect("tenant slot poisoned");
        if !guard.queued {
            guard.queued = true;
            drop(guard);
            self.ready
                .lock()
                .expect("ready queue poisoned")
                .push_back(tenant.to_string());
        }
    }

    /// Inject elements into `tenant`'s stream. An evicted tenant is
    /// restored transparently first. Admission is bounded by the
    /// tenant's bag budget; the overflow comes back as
    /// [`InjectOutcome::Spilled`] — backpressure the caller must queue,
    /// shed, or retry after [`ServiceRuntime::run_next_wave`] drains the
    /// tenant's bag.
    pub fn inject(
        &self,
        tenant: &str,
        elements: impl IntoIterator<Item = Element>,
    ) -> Result<InjectOutcome, ServiceError> {
        let slot = self.slot(tenant)?;
        let tick = self.next_tick();
        self.injects_total.fetch_add(1, Ordering::Relaxed);
        let (outcome, admitted_work) = {
            let mut guard = slot.lock().expect("tenant slot poisoned");
            guard.last_active = tick;
            let session = guard.session(&self.config.dispatch)?;
            let outcome = session.inject(elements);
            let has_bag = session.bag_len() > 0;
            if let InjectOutcome::Spilled(sp) = &outcome {
                guard.spilled_total += sp.len() as u64;
            }
            (outcome, has_bag)
        };
        if admitted_work {
            self.enqueue_locked_slot(tenant, &slot);
        }
        Ok(outcome)
    }

    /// Grant extra firing budget to a tenant whose wave returned
    /// [`Status::BudgetExhausted`], and requeue it for another wave.
    pub fn grant_budget(&self, tenant: &str, extra: u64) -> Result<(), ServiceError> {
        let slot = self.slot(tenant)?;
        {
            let mut guard = slot.lock().expect("tenant slot poisoned");
            let session = guard.session(&self.config.dispatch)?;
            session.grant_budget(extra);
        }
        self.enqueue_locked_slot(tenant, &slot);
        Ok(())
    }

    /// Run one wave for the tenant at the head of the ready queue, or
    /// return `None` when no tenant is ready. FIFO order is the
    /// fairness policy: a tenant re-injected during its own wave goes to
    /// the back of the queue.
    ///
    /// Any number of threads may call this concurrently; each wave runs
    /// under its tenant's slot lock, so one tenant's waves serialize
    /// while distinct tenants' waves overlap.
    pub fn run_next_wave(&self) -> Result<Option<WaveReport>, ServiceError> {
        let tenant = {
            let mut ready = self.ready.lock().expect("ready queue poisoned");
            match ready.pop_front() {
                Some(t) => t,
                None => return Ok(None),
            }
        };
        // Deregistered while queued: skip to the next ready tenant.
        let slot = match self.slot(&tenant) {
            Ok(s) => s,
            Err(ServiceError::UnknownTenant(_)) => return self.run_next_wave(),
            Err(e) => return Err(e),
        };
        let tick = self.next_tick();
        let mut guard = slot.lock().expect("tenant slot poisoned");
        // Clear before running: an inject landing mid-wave requeues the
        // tenant rather than being lost.
        guard.queued = false;
        guard.last_active = tick;
        let session = guard.session(&self.config.dispatch)?;
        let wave = session.run_to_stable()?;
        self.waves_total.fetch_add(1, Ordering::Relaxed);
        Ok(Some(WaveReport { tenant, wave }))
    }

    /// Drive waves until the ready queue drains, returning how many
    /// waves ran. Budget-exhausted tenants are left unqueued (grant and
    /// requeue via [`ServiceRuntime::grant_budget`]).
    pub fn drive_until_quiet(&self) -> Result<u64, ServiceError> {
        let mut waves = 0;
        while self.run_next_wave()?.is_some() {
            waves += 1;
        }
        Ok(waves)
    }

    /// Evict `tenant` to a snapshot, dropping its live matcher state.
    /// Returns `false` (and does nothing) when the tenant is already
    /// evicted or has queued work — evicting a ready session would only
    /// force an immediate restore.
    pub fn evict(&self, tenant: &str) -> Result<bool, ServiceError> {
        let slot = self.slot(tenant)?;
        let mut guard = slot.lock().expect("tenant slot poisoned");
        if guard.queued {
            return Ok(false);
        }
        match &guard.state {
            SlotState::Resident(session) => {
                let snap = session.snapshot_state();
                guard.state = SlotState::Evicted(Box::new(snap));
                guard.evictions += 1;
                Ok(true)
            }
            SlotState::Evicted(_) => Ok(false),
            SlotState::Poisoned => unreachable!("poisoned only transiently under the slot lock"),
        }
    }

    /// Evict every resident tenant idle for at least `min_idle_ticks`
    /// service operations. Returns how many were evicted.
    pub fn evict_idle(&self, min_idle_ticks: u64) -> Result<usize, ServiceError> {
        let now = self.tick.load(Ordering::Relaxed);
        let ids: Vec<String> = {
            let tenants = self.tenants.read().expect("tenant registry poisoned");
            tenants.keys().cloned().collect()
        };
        let mut evicted = 0;
        for id in ids {
            let Ok(slot) = self.slot(&id) else { continue };
            let idle = {
                let guard = slot.lock().expect("tenant slot poisoned");
                !guard.queued && now.saturating_sub(guard.last_active) >= min_idle_ticks
            };
            if idle && self.evict(&id)? {
                evicted += 1;
            }
        }
        Ok(evicted)
    }

    /// Take `tenant`'s entire stable multiset, leaving its bag empty —
    /// the downstream hand-off that frees bag budget mid-backpressure.
    /// The tenant stays registered with its matcher state intact, so a
    /// spilled batch re-injected after a drain is admitted in full.
    pub fn drain(&self, tenant: &str) -> Result<ElementBag, ServiceError> {
        let slot = self.slot(tenant)?;
        let tick = self.next_tick();
        let mut guard = slot.lock().expect("tenant slot poisoned");
        guard.last_active = tick;
        Ok(guard.session(&self.config.dispatch)?.drain_stable())
    }

    /// A copy of `tenant`'s current multiset (restoring it first if
    /// evicted).
    pub fn snapshot(&self, tenant: &str) -> Result<ElementBag, ServiceError> {
        let slot = self.slot(tenant)?;
        let mut guard = slot.lock().expect("tenant slot poisoned");
        Ok(guard.session(&self.config.dispatch)?.snapshot())
    }

    /// `tenant`'s last wave status.
    pub fn status(&self, tenant: &str) -> Result<Status, ServiceError> {
        let slot = self.slot(tenant)?;
        let mut guard = slot.lock().expect("tenant slot poisoned");
        Ok(guard.session(&self.config.dispatch)?.status())
    }

    /// Deregister `tenant` and return its final execution result
    /// (restoring first when evicted).
    pub fn finish(&self, tenant: &str) -> Result<ExecResult, ServiceError> {
        let slot = {
            let mut tenants = self.tenants.write().expect("tenant registry poisoned");
            tenants
                .remove(tenant)
                .ok_or_else(|| ServiceError::UnknownTenant(tenant.to_string()))?
        };
        let mut guard = slot.lock().expect("tenant slot poisoned");
        guard.session(&self.config.dispatch)?;
        let state = std::mem::replace(&mut guard.state, SlotState::Poisoned);
        match state {
            SlotState::Resident(session) => Ok(session.finish()),
            SlotState::Evicted(_) | SlotState::Poisoned => {
                unreachable!("made resident above")
            }
        }
    }

    /// Registered tenant count `(resident, evicted)`.
    pub fn census(&self) -> (usize, usize) {
        let tenants = self.tenants.read().expect("tenant registry poisoned");
        let mut resident = 0;
        let mut evicted = 0;
        for slot in tenants.values() {
            match slot.lock().expect("tenant slot poisoned").state {
                SlotState::Resident(_) => resident += 1,
                SlotState::Evicted(_) => evicted += 1,
                SlotState::Poisoned => {}
            }
        }
        (resident, evicted)
    }

    /// The service-level metrics page: service gauges (tenant census,
    /// ready-queue depth, pool lease counters) plus every *resident*
    /// session's full registry with a `tenant` label — one scrape
    /// endpoint for the whole process. Evicted tenants contribute only
    /// their slot counters (their session registries are parked in the
    /// snapshot's counter fields until restore).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let (resident, evicted) = self.census();
        reg.gauge("gammad_tenants_resident", &[], resident as f64);
        reg.gauge("gammad_tenants_evicted", &[], evicted as f64);
        reg.gauge(
            "gammad_ready_queue_depth",
            &[],
            self.ready.lock().expect("ready queue poisoned").len() as f64,
        );
        reg.counter(
            "gammad_waves_total",
            &[],
            self.waves_total.load(Ordering::Relaxed),
        );
        reg.counter(
            "gammad_injects_total",
            &[],
            self.injects_total.load(Ordering::Relaxed),
        );
        let (leases, spawns) = WorkerPool::global().lease_stats();
        reg.counter("gammad_pool_leases_total", &[], leases);
        reg.counter("gammad_pool_lease_refusals_total", &[], spawns);
        reg.gauge(
            "gammad_pool_workers",
            &[],
            WorkerPool::global().size() as f64,
        );
        let tenants = self.tenants.read().expect("tenant registry poisoned");
        for (id, slot) in tenants.iter() {
            let guard = slot.lock().expect("tenant slot poisoned");
            let labels: &[(&str, &str)] = &[("tenant", id.as_str())];
            reg.counter("gammad_tenant_evictions_total", labels, guard.evictions);
            reg.counter("gammad_tenant_restores_total", labels, guard.restores);
            reg.counter(
                "gammad_tenant_spilled_elements_total",
                labels,
                guard.spilled_total,
            );
            if let SlotState::Resident(session) = &guard.state {
                reg.absorb_labeled(&session.metrics(), labels);
            }
        }
        reg
    }

    /// Flush the multiplexed trace file, if one is configured.
    pub fn flush_trace(&self) {
        if let Some(t) = &self.trace {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{ElementSpec, Expr, Pattern, ReactionSpec, Scheduling, Selection};

    fn doubler() -> GammaProgram {
        GammaProgram::new(vec![ReactionSpec::new("double")
            .replace(Pattern::pair("x", "in"))
            .by(vec![ElementSpec::pair(
                Expr::bin(
                    gammaflow_multiset::value::BinOp::Mul,
                    Expr::var("x"),
                    Expr::int(2),
                ),
                "out",
            )])])
    }

    fn elems(range: std::ops::Range<i64>) -> Vec<Element> {
        range.map(|v| Element::pair(v, "in")).collect()
    }

    #[test]
    fn register_inject_wave_finish_roundtrip() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        svc.register("t0", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        let outcome = svc.inject("t0", elems(0..10)).unwrap();
        assert!(outcome.is_accepted());
        let report = svc.run_next_wave().unwrap().expect("t0 is ready");
        assert_eq!(report.tenant, "t0");
        assert_eq!(report.wave.fired, 10);
        assert!(svc.run_next_wave().unwrap().is_none(), "queue drained");
        let result = svc.finish("t0").unwrap();
        assert_eq!(result.multiset.len(), 10);
        assert!(matches!(
            svc.inject("t0", elems(0..1)),
            Err(ServiceError::UnknownTenant(_))
        ));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        svc.register("dup", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        assert!(matches!(
            svc.register("dup", &program, EngineConfig::default(), ElementBag::new()),
            Err(ServiceError::DuplicateTenant(_))
        ));
    }

    #[test]
    fn budget_spill_backpressure_and_reinject_converge() {
        let svc = ServiceRuntime::new(ServiceConfig {
            default_bag_budget: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        let program = doubler();
        svc.register("bp", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        // 20 elements against a budget of 8: spill, run a wave, drain
        // the stable outputs downstream to free budget, retry the
        // spilled batch until everything is through.
        let mut pending = elems(0..20);
        let mut outputs = ElementBag::new();
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds < 10, "backpressure loop did not converge");
            pending = svc.inject("bp", pending).unwrap().spilled();
            svc.drive_until_quiet().unwrap();
            outputs.absorb(svc.drain("bp").unwrap());
        }
        svc.finish("bp").unwrap();
        assert_eq!(outputs.len(), 20);
        assert_eq!(outputs.count(&Element::pair(38, "out")), 1);
    }

    #[test]
    fn eviction_restores_transparently_mid_stream() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        let config = EngineConfig {
            scheduling: Scheduling::Delta,
            selection: Selection::Seeded(3),
            ..EngineConfig::default()
        };
        svc.register("ev", &program, config.clone(), ElementBag::new())
            .unwrap();
        let _ = svc.inject("ev", elems(0..5)).unwrap();
        svc.drive_until_quiet().unwrap();
        assert!(svc.evict("ev").unwrap());
        assert_eq!(svc.census(), (0, 1));
        assert!(!svc.evict("ev").unwrap(), "double-evict is a no-op");
        // The next inject restores in place; the stream continues.
        let _ = svc.inject("ev", elems(5..10)).unwrap();
        assert_eq!(svc.census(), (1, 0));
        svc.drive_until_quiet().unwrap();
        let evicted_final = svc.finish("ev").unwrap().multiset;

        // Reference: the same stream without the eviction.
        let svc2 = ServiceRuntime::with_defaults();
        svc2.register("ref", &program, config, ElementBag::new())
            .unwrap();
        let _ = svc2.inject("ref", elems(0..5)).unwrap();
        svc2.drive_until_quiet().unwrap();
        let _ = svc2.inject("ref", elems(5..10)).unwrap();
        svc2.drive_until_quiet().unwrap();
        assert_eq!(evicted_final, svc2.finish("ref").unwrap().multiset);
    }

    #[test]
    fn evict_idle_skips_ready_tenants() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        svc.register("idle", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        svc.register("busy", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        let _ = svc.inject("idle", elems(0..2)).unwrap();
        svc.drive_until_quiet().unwrap();
        // "busy" has queued work and must not be evicted.
        let _ = svc.inject("busy", elems(0..2)).unwrap();
        let evicted = svc.evict_idle(0).unwrap();
        assert_eq!(evicted, 1);
        assert_eq!(svc.census(), (1, 1));
        svc.drive_until_quiet().unwrap();
    }

    #[test]
    fn fifo_scheduling_is_fair_across_tenants() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        for i in 0..4 {
            svc.register(
                &format!("t{i}"),
                &program,
                EngineConfig::default(),
                ElementBag::new(),
            )
            .unwrap();
        }
        for i in 0..4 {
            let _ = svc.inject(&format!("t{i}"), elems(0..1)).unwrap();
        }
        let mut order = Vec::new();
        while let Some(report) = svc.run_next_wave().unwrap() {
            order.push(report.tenant);
        }
        assert_eq!(order, vec!["t0", "t1", "t2", "t3"]);
    }

    #[test]
    fn metrics_are_keyed_by_tenant() {
        let svc = ServiceRuntime::with_defaults();
        let program = doubler();
        svc.register("m0", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        let _ = svc.inject("m0", elems(0..3)).unwrap();
        svc.drive_until_quiet().unwrap();
        let page = svc.metrics();
        let tenant_firings = page
            .metrics
            .iter()
            .find(|m| {
                m.name == "gamma_firings_total"
                    && m.labels.iter().any(|(k, v)| k == "tenant" && v == "m0")
            })
            .expect("per-tenant firings metric present");
        assert_eq!(tenant_firings.value, 3.0);
        assert!(page
            .metrics
            .iter()
            .any(|m| m.name == "gammad_waves_total" && m.value == 1.0));
        // Renders without panicking.
        assert!(page.to_prometheus().contains("gamma_firings_total"));
    }

    #[test]
    fn tenant_tagged_trace_lines_stay_parseable() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("gammad_trace_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let svc = ServiceRuntime::new(ServiceConfig {
            trace_path: Some(path.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        let program = doubler();
        svc.register("tr", &program, EngineConfig::default(), ElementBag::new())
            .unwrap();
        let _ = svc.inject("tr", elems(0..2)).unwrap();
        svc.drive_until_quiet().unwrap();
        svc.flush_trace();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(!text.trim().is_empty(), "trace file has lines");
        for line in text.lines() {
            assert!(line.starts_with("{\"tenant\":\"tr\","), "line: {line}");
            // Still a valid TraceRecord for tenant-unaware tooling.
            let rec: TraceRecord = serde_json::from_str(line).expect("line parses");
            let _ = rec;
        }
    }
}
