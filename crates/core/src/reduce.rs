//! §III-A3 reductions: fusing reactions to coarser granularity.
//!
//! The paper observes that converted reaction sets can be *reduced* —
//! Example 1's three reactions collapse into the single `Rd1`, Example 2's
//! nine into six — trading match probability for exposed parallelism.
//! [`fuse_all`] automates the transformation the paper performs by hand:
//!
//! A producer `P` and consumer `C` fuse over label `L` when
//! * `P` has a single unconditional clause producing exactly one element,
//!   labelled `L` with a same-tag form (fusing across an inctag would need
//!   tag-shifted patterns, which the grammar cannot express);
//! * `L` is consumed by exactly one pattern in the whole program (in `C`)
//!   and produced only by `P`;
//! * `L` is not protected (an initial-multiset or observable-output label).
//!
//! The fused reaction replaces `C`'s `L`-pattern with `P`'s replace-list
//! (variables renamed apart), substitutes `P`'s action expression for the
//! consumed variable throughout `C`'s conditions and outputs, and conjoins
//! `where` conditions. Running to a fixpoint on Example 1 yields exactly
//! the paper's `Rd1` (verified textually in the test suite via
//! [`canonicalize_vars`]).

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{
    ElementSpec, GammaProgram, Guard, LabelPat, LabelSpec, Pattern, ReactionSpec, TagPat, TagSpec,
    ValuePat,
};
use gammaflow_multiset::{FxHashMap, Symbol};

/// Report of a fusion pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionReport {
    /// `(producer, consumer, label)` triples fused, in order.
    pub fused: Vec<(String, String, String)>,
    /// Reaction count before.
    pub before: usize,
    /// Reaction count after.
    pub after: usize,
}

/// Is this output's tag the plain same-tag form (`v` or elided)?
fn same_tag(spec: &ElementSpec, tag_var: Option<Symbol>) -> bool {
    match (&spec.tag, tag_var) {
        (TagSpec::Zero, _) => true,
        (TagSpec::Expr(Expr::Var(v)), Some(tv)) => *v == tv,
        _ => false,
    }
}

fn pattern_tag_var(p: &Pattern) -> Option<Symbol> {
    match &p.tag {
        TagPat::Var(v) => Some(*v),
        _ => None,
    }
}

/// Rename every variable of `spec` with a prefix, returning the renamed
/// spec and the mapping.
fn rename_apart(spec: &ReactionSpec, prefix: &str) -> (ReactionSpec, FxHashMap<Symbol, Symbol>) {
    let mut map: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    let rn = |s: Symbol, map: &mut FxHashMap<Symbol, Symbol>| -> Symbol {
        *map.entry(s)
            .or_insert_with(|| Symbol::intern(&format!("{prefix}{s}")))
    };
    let rename_expr = |e: &Expr, map: &mut FxHashMap<Symbol, Symbol>| -> Expr {
        let mut subst: FxHashMap<Symbol, Expr> = FxHashMap::default();
        for v in e.vars() {
            let nv = *map
                .entry(v)
                .or_insert_with(|| Symbol::intern(&format!("{prefix}{v}")));
            subst.insert(v, Expr::Var(nv));
        }
        e.substitute(&subst)
    };
    let mut out = spec.clone();
    for p in &mut out.patterns {
        if let ValuePat::Var(v) = &mut p.value {
            *v = rn(*v, &mut map);
        }
        match &mut p.label {
            LabelPat::Var(v) => *v = rn(*v, &mut map),
            LabelPat::OneOf(_, Some(v)) => *v = rn(*v, &mut map),
            _ => {}
        }
        if let TagPat::Var(v) = &mut p.tag {
            *v = rn(*v, &mut map);
        }
    }
    if let Some(w) = &mut out.where_cond {
        *w = rename_expr(w, &mut map);
    }
    for c in &mut out.clauses {
        if let Guard::If(e) = &mut c.guard {
            *e = rename_expr(e, &mut map);
        }
        for o in &mut c.outputs {
            o.value = rename_expr(&o.value, &mut map);
            if let LabelSpec::Var(v) = &mut o.label {
                *v = rn(*v, &mut map);
            }
            if let TagSpec::Expr(e) = &mut o.tag {
                *e = rename_expr(e, &mut map);
            }
        }
    }
    (out, map)
}

/// Substitute `var := replacement` through a reaction's expressions.
fn substitute_var(spec: &mut ReactionSpec, var: Symbol, replacement: &Expr) {
    let mut subst: FxHashMap<Symbol, Expr> = FxHashMap::default();
    subst.insert(var, replacement.clone());
    if let Some(w) = &mut spec.where_cond {
        *w = w.substitute(&subst);
    }
    for c in &mut spec.clauses {
        if let Guard::If(e) = &mut c.guard {
            *e = e.substitute(&subst);
        }
        for o in &mut c.outputs {
            o.value = o.value.substitute(&subst);
            if let TagSpec::Expr(e) = &mut o.tag {
                *e = e.substitute(&subst);
            }
        }
    }
}

/// Labels a reaction can produce (literal ones).
fn produced_labels(r: &ReactionSpec) -> Vec<Symbol> {
    let mut out = Vec::new();
    for c in &r.clauses {
        for o in &c.outputs {
            if let LabelSpec::Lit(l) = &o.label {
                out.push(*l);
            }
        }
    }
    out
}

/// Attempt to fuse one eligible producer/consumer pair. Returns the new
/// program and the fused triple, or `None` if nothing is eligible.
pub fn fuse_once(
    prog: &GammaProgram,
    protected: &[Symbol],
) -> Option<(GammaProgram, (String, String, String))> {
    // Count producers/consumers per label.
    let mut producers: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
    let mut consumers: FxHashMap<Symbol, Vec<(usize, usize)>> = FxHashMap::default();
    for (i, r) in prog.reactions.iter().enumerate() {
        for l in produced_labels(r) {
            producers.entry(l).or_default().push(i);
        }
        for (pi, p) in r.patterns.iter().enumerate() {
            match &p.label {
                LabelPat::Lit(l) => consumers.entry(*l).or_default().push((i, pi)),
                LabelPat::OneOf(ls, _) => {
                    for l in ls {
                        consumers.entry(*l).or_default().push((i, pi));
                    }
                }
                LabelPat::Var(_) => return None, // wildcard: give up globally
            }
        }
    }

    for (pi_idx, p) in prog.reactions.iter().enumerate() {
        // Producer eligibility: one Always clause, exactly one output.
        if p.clauses.len() != 1
            || !matches!(p.clauses[0].guard, Guard::Always)
            || p.clauses[0].outputs.len() != 1
        {
            continue;
        }
        let out = &p.clauses[0].outputs[0];
        let LabelSpec::Lit(label) = out.label else {
            continue;
        };
        if protected.contains(&label) {
            continue;
        }
        let p_tag = p.patterns.first().and_then(pattern_tag_var);
        if !same_tag(out, p_tag) {
            continue;
        }
        if producers.get(&label).map(Vec::len) != Some(1) {
            continue;
        }
        let Some(cons) = consumers.get(&label) else {
            continue;
        };
        if cons.len() != 1 {
            continue;
        }
        let (ci_idx, cpat_idx) = cons[0];
        if ci_idx == pi_idx {
            continue; // self-loop label; fusing would change semantics
        }
        let c = &prog.reactions[ci_idx];
        // Consumer's pattern must be a plain literal-label pattern binding
        // a value variable (OneOf merges keep their other sources).
        let cp = &c.patterns[cpat_idx];
        if !matches!(cp.label, LabelPat::Lit(_)) {
            continue;
        }
        let Some(cv) = (match &cp.value {
            ValuePat::Var(v) => Some(*v),
            _ => None,
        }) else {
            continue;
        };

        // Rename producer apart, then unify tags: the producer's tag var
        // becomes the consumer pattern's tag var (both sides are same-tag).
        let (mut p_ren, _map) = rename_apart(p, &format!("{}__", p.name));
        let c_tagvar = pattern_tag_var(cp);
        let p_tagvar = p_ren.patterns.first().and_then(pattern_tag_var);
        if let (Some(ct), Some(pt)) = (c_tagvar, p_tagvar) {
            // Substitute pt := ct in the renamed producer.
            let mut subst: FxHashMap<Symbol, Expr> = FxHashMap::default();
            subst.insert(pt, Expr::Var(ct));
            for pat in &mut p_ren.patterns {
                if pattern_tag_var(pat) == Some(pt) {
                    pat.tag = TagPat::Var(ct);
                }
            }
            if let Some(w) = &mut p_ren.where_cond {
                *w = w.substitute(&subst);
            }
            for cl in &mut p_ren.clauses {
                for o in &mut cl.outputs {
                    o.value = o.value.substitute(&subst);
                    if let TagSpec::Expr(e) = &mut o.tag {
                        *e = e.substitute(&subst);
                    }
                }
                if let Guard::If(e) = &mut cl.guard {
                    *e = e.substitute(&subst);
                }
            }
        } else if c_tagvar.is_some() != p_tagvar.is_some() {
            continue; // pair-style and tagged styles don't mix
        }

        // Build the fused reaction.
        let mut fused = ReactionSpec {
            name: format!("{}+{}", c.name, p.name),
            patterns: Vec::new(),
            where_cond: None,
            clauses: c.clauses.clone(),
        };
        for (k, pat) in c.patterns.iter().enumerate() {
            if k == cpat_idx {
                fused.patterns.extend(p_ren.patterns.iter().cloned());
            } else {
                fused.patterns.push(pat.clone());
            }
        }
        let replacement = p_ren.clauses[0].outputs[0].value.clone();
        substitute_var(&mut fused, cv, &replacement);
        fused.where_cond = match (c.where_cond.clone(), p_ren.where_cond.clone()) {
            (None, None) => None,
            (Some(a), None) => {
                let mut subst: FxHashMap<Symbol, Expr> = FxHashMap::default();
                subst.insert(cv, replacement.clone());
                Some(a.substitute(&subst))
            }
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => {
                let mut subst: FxHashMap<Symbol, Expr> = FxHashMap::default();
                subst.insert(cv, replacement.clone());
                Some(Expr::and(a.substitute(&subst), b))
            }
        };

        let mut reactions = Vec::with_capacity(prog.reactions.len() - 1);
        for (i, r) in prog.reactions.iter().enumerate() {
            if i == pi_idx {
                continue;
            }
            if i == ci_idx {
                reactions.push(fused.clone());
            } else {
                reactions.push(r.clone());
            }
        }
        return Some((
            GammaProgram::new(reactions),
            (p.name.clone(), c.name.clone(), label.as_str().to_string()),
        ));
    }
    None
}

/// Fuse to a fixpoint. `protected` labels (initial multiset, observable
/// outputs) are never eliminated.
pub fn fuse_all(prog: &GammaProgram, protected: &[Symbol]) -> (GammaProgram, FusionReport) {
    let mut report = FusionReport {
        before: prog.len(),
        ..FusionReport::default()
    };
    let mut current = prog.clone();
    while let Some((next, triple)) = fuse_once(&current, protected) {
        report.fused.push(triple);
        current = next;
    }
    report.after = current.len();
    (current, report)
}

/// Rename all variables to a canonical scheme (`id1, id2, …` for values in
/// pattern order, `x1, …` for label vars, `v` for the first tag var) so
/// structurally identical reactions compare equal regardless of the
/// variable names fusion invented.
pub fn canonicalize_vars(spec: &ReactionSpec) -> ReactionSpec {
    let mut map: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    let mut value_n = 0usize;
    let mut label_n = 0usize;
    let mut tag_n = 0usize;
    for p in &spec.patterns {
        if let ValuePat::Var(v) = &p.value {
            map.entry(*v).or_insert_with(|| {
                value_n += 1;
                Symbol::intern(&format!("id{value_n}"))
            });
        }
        match &p.label {
            LabelPat::Var(v) | LabelPat::OneOf(_, Some(v)) => {
                map.entry(*v).or_insert_with(|| {
                    label_n += 1;
                    Symbol::intern(&format!("x{label_n}"))
                });
            }
            _ => {}
        }
        if let TagPat::Var(v) = &p.tag {
            map.entry(*v).or_insert_with(|| {
                tag_n += 1;
                if tag_n == 1 {
                    Symbol::intern("v")
                } else {
                    Symbol::intern(&format!("v{tag_n}"))
                }
            });
        }
    }
    let subst: FxHashMap<Symbol, Expr> = map.iter().map(|(k, v)| (*k, Expr::Var(*v))).collect();
    let ren = |e: &Expr| e.substitute(&subst);

    let mut out = spec.clone();
    for p in &mut out.patterns {
        if let ValuePat::Var(v) = &mut p.value {
            *v = map[v];
        }
        match &mut p.label {
            LabelPat::Var(v) => *v = map[v],
            LabelPat::OneOf(_, Some(v)) => *v = map[v],
            _ => {}
        }
        if let TagPat::Var(v) = &mut p.tag {
            *v = map[v];
        }
    }
    if let Some(w) = &mut out.where_cond {
        *w = ren(w);
    }
    for c in &mut out.clauses {
        if let Guard::If(e) = &mut c.guard {
            *e = ren(e);
        }
        for o in &mut c.outputs {
            o.value = ren(&o.value);
            if let LabelSpec::Var(v) = &mut o.label {
                *v = map.get(v).copied().unwrap_or(*v);
            }
            if let TagSpec::Expr(e) = &mut o.tag {
                *e = ren(e);
            }
        }
    }
    out
}

/// Granularity metrics for a program (used by experiment P1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Granularity {
    /// Number of reactions.
    pub reactions: usize,
    /// Mean replace-list arity ×1000 (fixed point to stay `Eq`).
    pub mean_arity_milli: usize,
    /// Total expression nodes across all actions.
    pub action_size: usize,
}

/// Compute granularity metrics.
pub fn granularity(prog: &GammaProgram) -> Granularity {
    let reactions = prog.len();
    let total_arity: usize = prog.reactions.iter().map(|r| r.arity()).sum();
    let action_size = prog
        .reactions
        .iter()
        .flat_map(|r| r.clauses.iter())
        .flat_map(|c| c.outputs.iter())
        .map(|o| o.value.size())
        .sum();
    Granularity {
        reactions,
        mean_arity_milli: (total_arity * 1000).checked_div(reactions).unwrap_or(0),
        action_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{SeqInterpreter, Status};
    use gammaflow_lang::{parse_program, parse_reaction, pretty_reaction};
    use gammaflow_multiset::{Element, ElementBag};

    fn example1() -> GammaProgram {
        parse_program(
            "R1 = replace [id1,'A1'], [id2,'B1'] by [id1+id2,'B2']
             R2 = replace [id1,'C1'], [id2,'D1'] by [id1*id2,'C2']
             R3 = replace [id1,'B2'], [id2,'C2'] by [id1-id2,'m']",
        )
        .unwrap()
    }

    fn protected() -> Vec<Symbol> {
        ["A1", "B1", "C1", "D1", "m"]
            .iter()
            .map(|l| Symbol::intern(l))
            .collect()
    }

    #[test]
    fn example1_fuses_to_single_reaction() {
        let (fused, report) = fuse_all(&example1(), &protected());
        assert_eq!(report.before, 3);
        assert_eq!(report.after, 1);
        assert_eq!(fused.len(), 1);
        assert_eq!(report.fused.len(), 2);
    }

    #[test]
    fn fused_example1_matches_paper_rd1() {
        let (fused, _) = fuse_all(&example1(), &protected());
        let canonical = canonicalize_vars(&fused.reactions[0]);
        // The paper's Rd1, canonicalised the same way.
        let mut rd1 = parse_reaction(
            "Rd1 = replace [id1,'A1'], [id2,'B1'], [id3,'C1'], [id4,'D1']
                   by [(id1+id2)-(id3*id4),'m']",
        )
        .unwrap();
        rd1 = canonicalize_vars(&rd1);
        assert_eq!(canonical.patterns, rd1.patterns);
        assert_eq!(canonical.clauses, rd1.clauses);
        assert_eq!(
            pretty_reaction(&canonical).lines().last().unwrap().trim(),
            "by [id1 + id2 - id3 * id4,'m']"
        );
    }

    #[test]
    fn fused_program_computes_same_result() {
        let initial: ElementBag = [
            Element::pair(1, "A1"),
            Element::pair(5, "B1"),
            Element::pair(3, "C1"),
            Element::pair(2, "D1"),
        ]
        .into_iter()
        .collect();
        let (fused, _) = fuse_all(&example1(), &protected());
        let a = SeqInterpreter::with_seed(&example1(), initial.clone(), 5)
            .run()
            .unwrap();
        let b = SeqInterpreter::with_seed(&fused, initial, 5).run().unwrap();
        assert_eq!(a.status, Status::Stable);
        assert_eq!(b.status, Status::Stable);
        assert_eq!(a.multiset, b.multiset);
        // But the fused program fires fewer, bigger reactions.
        assert_eq!(a.stats.firings_total(), 3);
        assert_eq!(b.stats.firings_total(), 1);
    }

    #[test]
    fn protected_labels_stop_fusion() {
        // Protecting the intermediate B2 blocks the R1→R3 fusion.
        let prot: Vec<Symbol> = ["A1", "B1", "C1", "D1", "m", "B2"]
            .iter()
            .map(|l| Symbol::intern(l))
            .collect();
        let (fused, report) = fuse_all(&example1(), &prot);
        assert_eq!(fused.len(), 2);
        assert_eq!(report.fused.len(), 1);
        assert_eq!(report.fused[0].2, "C2");
    }

    #[test]
    fn steer_producers_do_not_fuse() {
        // A producer with if/else clauses is not fusable.
        let prog = parse_program(
            "S = replace [d,'in'], [c,'ctl'] by [d,'mid'] if c == 1 by 0 else
             C = replace [x,'mid'] by [x+1,'out']",
        )
        .unwrap();
        let (fused, report) = fuse_all(
            &prog,
            &[
                Symbol::intern("in"),
                Symbol::intern("ctl"),
                Symbol::intern("out"),
            ],
        );
        assert_eq!(fused.len(), 2);
        assert!(report.fused.is_empty());
    }

    #[test]
    fn tagged_chain_fuses_with_tag_unification() {
        let prog = parse_program(
            "P = replace [a,'x',v] by [a*2,'mid',v]
             C = replace [b,'mid',w], [c,'y',w] by [b+c,'out',w]",
        )
        .unwrap();
        let prot: Vec<Symbol> = ["x", "y", "out"]
            .iter()
            .map(|l| Symbol::intern(l))
            .collect();
        let (fused, report) = fuse_all(&prog, &prot);
        assert_eq!(fused.len(), 1);
        assert_eq!(report.fused.len(), 1);
        // Execute: x=3@t2, y=4@t2 → out = 3*2+4 = 10 at tag 2.
        let initial: ElementBag = [Element::new(3, "x", 2u64), Element::new(4, "y", 2u64)]
            .into_iter()
            .collect();
        let r = SeqInterpreter::with_seed(&fused, initial, 0).run().unwrap();
        assert_eq!(
            r.multiset.sorted_elements(),
            vec![Element::new(10, "out", 2u64)]
        );
    }

    #[test]
    fn inctag_producer_does_not_fuse() {
        // Producer emits tag v+1: fusing would need tag-shifted patterns.
        let prog = parse_program(
            "P = replace [a,'x',v] by [a,'mid',v+1]
             C = replace [b,'mid',w] by [b,'out',w]",
        )
        .unwrap();
        let prot: Vec<Symbol> = ["x", "out"].iter().map(|l| Symbol::intern(l)).collect();
        let (fused, report) = fuse_all(&prog, &prot);
        assert_eq!(fused.len(), 2);
        assert!(report.fused.is_empty());
    }

    #[test]
    fn granularity_metrics() {
        let g3 = granularity(&example1());
        assert_eq!(g3.reactions, 3);
        assert_eq!(g3.mean_arity_milli, 2000);
        let (fused, _) = fuse_all(&example1(), &protected());
        let g1 = granularity(&fused);
        assert_eq!(g1.reactions, 1);
        assert_eq!(g1.mean_arity_milli, 4000);
        assert!(g1.action_size >= g3.action_size / 2);
    }

    #[test]
    fn fusion_handles_variable_collisions() {
        // Both reactions use `id1`; renaming must keep them apart.
        let prog = parse_program(
            "P = replace [id1,'a'] by [id1+1,'mid']
             C = replace [id1,'mid'] by [id1*10,'out']",
        )
        .unwrap();
        let prot: Vec<Symbol> = ["a", "out"].iter().map(|l| Symbol::intern(l)).collect();
        let (fused, _) = fuse_all(&prog, &prot);
        assert_eq!(fused.len(), 1);
        let initial: ElementBag = [Element::pair(4, "a")].into_iter().collect();
        let r = SeqInterpreter::with_seed(&fused, initial, 0).run().unwrap();
        assert_eq!(r.multiset.sorted_elements(), vec![Element::pair(50, "out")]);
    }
}
