//! The paper's primary contribution: equivalence between dynamic dataflow
//! and Gamma, made executable.
//!
//! * [`df_to_gamma`] — **Algorithm 1**: dataflow graph → Gamma program
//!   (vertices → reactions, edges → element labels, roots → initial
//!   multiset). Its output on the paper's Fig. 1/Fig. 2 graphs reproduces
//!   the paper's reaction listings *textually* (see the E1/E2 integration
//!   tests).
//! * [`gamma_to_df`] — **Algorithm 2**: reaction → dataflow graph, the
//!   Fig. 4 multiset mapping ([`map_multiset`]), node-kind recovery (the
//!   paper's future-work analysis, [`recover_shape`]), and whole-program
//!   stitching ([`gamma_to_dataflow`]) that inverts Algorithm 1.
//! * [`reduce`] — **§III-A3 reductions**: automated reaction fusion
//!   ([`fuse_all`]) reproducing the paper's `Rd1`, with granularity
//!   metrics for the parallelism-vs-match-probability trade-off.
//! * [`check`] — **§III-C sketch of proof**, as a differential testing
//!   harness ([`check_equivalence`]): both models must observably agree on
//!   every graph, seed, and engine.

#![warn(missing_docs)]

pub mod check;
pub mod df_to_gamma;
pub mod gamma_to_df;
pub mod reduce;

pub use check::{check_equivalence, CheckConfig, CheckError, EquivReport};
pub use df_to_gamma::{dataflow_to_gamma, Conversion, ConvertError};
pub use gamma_to_df::{
    build_reaction_subgraph, gamma_to_dataflow, map_multiset, reaction_to_graph, recover_shape,
    Alg2Error, MultisetMapping, Shape, SubgraphPorts,
};
pub use reduce::{canonicalize_vars, fuse_all, fuse_once, granularity, FusionReport, Granularity};
