//! Algorithm 1: converting a dynamic dataflow graph into a Gamma program.
//!
//! Following §III-B of the paper (as corrected by its worked examples —
//! see DESIGN.md §3 on edge vs node labels):
//!
//! * every **edge** label becomes a multiset-element label;
//! * **root (constant) nodes** seed the initial multiset with one element
//!   per out-edge, `[value, label, 0]` (line 9 of Algorithm 1);
//! * **arithmetic / unary** nodes become single-clause reactions
//!   `replace inputs by [id1 op id2, out-label, v]` with one output element
//!   per out-edge (lines 29–33);
//! * **comparison** nodes produce the integer control encoding through an
//!   `if/else` clause pair emitting `1`/`0` on every out-edge (lines
//!   23–28, the paper's R14);
//! * **steer** nodes become `by true-outs if ctl == 1 / by false-outs else`
//!   reactions (lines 13–19, the paper's R15–R17);
//! * **inctag** nodes become label-merging reactions that re-emit their
//!   input with `tag + 1` (lines 20–22, the paper's R11–R13); a
//!   multi-in-edge merge port becomes a `OneOf` label pattern — the paper's
//!   `if (x=='A1') or (x=='A11')` condition;
//! * **output sinks** generate no reaction: their in-edge labels are where
//!   results accumulate in the final multiset.
//!
//! Acyclic graphs (no inctag) use the paper's Example-1 pair style
//! (tag elided); graphs with inctags use full `[value, label, tag]`
//! triples.

use gammaflow_dataflow::graph::{DataflowGraph, NodeId, OutPort};
use gammaflow_dataflow::node::{ImmSide, NodeKind};
use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{
    ElementSpec, GammaProgram, LabelPat, Pattern, ReactionSpec, TagPat, TagSpec, ValuePat,
};
use gammaflow_multiset::value::CmpOp;
use gammaflow_multiset::{Element, ElementBag, Symbol, Tag};
use std::fmt;

/// Result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The generated reactions (one per non-root, non-output node).
    pub program: GammaProgram,
    /// The initial multiset `M` (from root nodes).
    pub initial: ElementBag,
    /// Labels on which results accumulate (edges into output sinks).
    pub output_labels: Vec<Symbol>,
    /// Whether elements carry meaningful tags (graph contains inctags).
    pub tagged: bool,
}

/// Conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// An input port of a non-inctag node has several in-edges whose merge
    /// cannot be expressed (reserved for future node kinds; the current
    /// node set always converts).
    UnsupportedMerge {
        /// Node name.
        node: String,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::UnsupportedMerge { node } => {
                write!(f, "node {node}: unsupported merge")
            }
        }
    }
}
impl std::error::Error for ConvertError {}

/// The shared tag variable name used in generated reactions (the paper
/// writes `v`).
const TAG_VAR: &str = "v";
/// The label variable used for merge patterns (the paper writes `x`).
const LABEL_VAR: &str = "x";

/// Build the pattern for one input port. Single in-edge ports bind a
/// literal label; merge ports get a `OneOf` with a bound label variable.
fn port_pattern(
    g: &DataflowGraph,
    node: NodeId,
    port: usize,
    value_var: &str,
    tagged: bool,
) -> Pattern {
    let edges = g.in_edges(node, port);
    let tag = if tagged {
        TagPat::Var(Symbol::intern(TAG_VAR))
    } else {
        TagPat::Any
    };
    let label = if edges.len() == 1 {
        LabelPat::Lit(g.edge(edges[0]).label)
    } else {
        LabelPat::OneOf(
            edges.iter().map(|&e| g.edge(e).label).collect(),
            Some(Symbol::intern(LABEL_VAR)),
        )
    };
    Pattern {
        value: ValuePat::Var(Symbol::intern(value_var)),
        label,
        tag,
    }
}

/// Output element `[expr, label, v]` (or pair form when untagged).
fn out_element(value: Expr, label: Symbol, tagged: bool) -> ElementSpec {
    ElementSpec {
        value,
        label: gammaflow_gamma::spec::LabelSpec::Lit(label),
        tag: if tagged {
            TagSpec::Expr(Expr::var(TAG_VAR))
        } else {
            TagSpec::Zero
        },
    }
}

/// Output element with incremented tag (inctag nodes).
fn out_element_inc(value: Expr, label: Symbol, tagged: bool) -> ElementSpec {
    ElementSpec {
        value,
        label: gammaflow_gamma::spec::LabelSpec::Lit(label),
        tag: if tagged {
            TagSpec::Expr(Expr::bin(
                gammaflow_multiset::value::BinOp::Add,
                Expr::var(TAG_VAR),
                Expr::int(1),
            ))
        } else {
            TagSpec::Zero
        },
    }
}

/// The operand expressions of a binary node with optional immediate:
/// `(lhs, rhs)` over the bound input variables.
fn binary_operands(imm: &Option<gammaflow_dataflow::node::Imm>) -> (Expr, Expr) {
    match imm {
        None => (Expr::var("id1"), Expr::var("id2")),
        Some(i) => match i.side {
            ImmSide::Left => (Expr::Lit(i.value.clone()), Expr::var("id1")),
            ImmSide::Right => (Expr::var("id1"), Expr::Lit(i.value.clone())),
        },
    }
}

/// Run Algorithm 1 on `g`.
pub fn dataflow_to_gamma(g: &DataflowGraph) -> Result<Conversion, ConvertError> {
    let tagged = g.nodes().iter().any(|n| matches!(n.kind, NodeKind::IncTag));

    let mut initial = ElementBag::new();
    let mut reactions = Vec::new();

    for node in g.nodes() {
        match &node.kind {
            NodeKind::Const(value) => {
                // Line 9: root nodes seed M with [value, label, 0].
                for edge in g.all_out_edges(node.id) {
                    initial.insert(Element {
                        value: value.clone(),
                        label: edge.label,
                        tag: Tag::ZERO,
                    });
                }
            }
            NodeKind::Output => {}
            NodeKind::Arith(op, imm) => {
                let mut r = ReactionSpec::new(&node.name);
                r = r.replace(port_pattern(g, node.id, 0, "id1", tagged));
                if imm.is_none() {
                    r = r.replace(port_pattern(g, node.id, 1, "id2", tagged));
                }
                let (lhs, rhs) = binary_operands(imm);
                let value = Expr::bin(*op, lhs, rhs);
                let outs: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element(value.clone(), g.edge(e).label, tagged))
                    .collect();
                reactions.push(r.by(outs));
            }
            NodeKind::Un(op) => {
                let r = ReactionSpec::new(&node.name)
                    .replace(port_pattern(g, node.id, 0, "id1", tagged));
                let value = Expr::un(*op, Expr::var("id1"));
                let outs: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element(value.clone(), g.edge(e).label, tagged))
                    .collect();
                reactions.push(r.by(outs));
            }
            NodeKind::Cmp(op, imm) => {
                // Lines 23–28 / the paper's R14: emit 1 on every out-edge
                // when the comparison holds, 0 otherwise.
                let mut r = ReactionSpec::new(&node.name);
                r = r.replace(port_pattern(g, node.id, 0, "id1", tagged));
                if imm.is_none() {
                    r = r.replace(port_pattern(g, node.id, 1, "id2", tagged));
                }
                let (lhs, rhs) = binary_operands(imm);
                let cond = Expr::cmp(*op, lhs, rhs);
                let ones: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element(Expr::int(1), g.edge(e).label, tagged))
                    .collect();
                let zeros: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element(Expr::int(0), g.edge(e).label, tagged))
                    .collect();
                reactions.push(r.by_if(ones, cond).by_else(zeros));
            }
            NodeKind::Steer => {
                // Lines 13–19 / the paper's R15–R17.
                let r = ReactionSpec::new(&node.name)
                    .replace(port_pattern(g, node.id, 0, "id1", tagged))
                    .replace(port_pattern(g, node.id, 1, "id2", tagged));
                let trues: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element(Expr::var("id1"), g.edge(e).label, tagged))
                    .collect();
                let falses: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::False)
                    .iter()
                    .map(|&e| out_element(Expr::var("id1"), g.edge(e).label, tagged))
                    .collect();
                let cond = Expr::cmp(CmpOp::Eq, Expr::var("id2"), Expr::int(1));
                reactions.push(r.by_if(trues, cond).by_else(falses));
            }
            NodeKind::IncTag => {
                // Lines 20–22 / the paper's R11–R13.
                let r = ReactionSpec::new(&node.name)
                    .replace(port_pattern(g, node.id, 0, "id1", tagged));
                let outs: Vec<ElementSpec> = g
                    .out_edges(node.id, OutPort::True)
                    .iter()
                    .map(|&e| out_element_inc(Expr::var("id1"), g.edge(e).label, tagged))
                    .collect();
                reactions.push(r.by(outs));
            }
        }
    }

    Ok(Conversion {
        program: GammaProgram::new(reactions),
        initial,
        output_labels: g.output_labels(),
        tagged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::graph::GraphBuilder;
    use gammaflow_dataflow::node::Imm;
    use gammaflow_gamma::{SeqInterpreter, Status};
    use gammaflow_lang::pretty_program;
    use gammaflow_multiset::value::BinOp;

    fn fig1() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        b.build().unwrap()
    }

    #[test]
    fn example1_reactions_match_paper_text() {
        let conv = dataflow_to_gamma(&fig1()).unwrap();
        assert!(!conv.tagged);
        let printed = pretty_program(&conv.program);
        let expected = "\
R1 = replace [id1,'A1'], [id2,'B1']
     by [id1 + id2,'B2']

R2 = replace [id1,'C1'], [id2,'D1']
     by [id1 * id2,'C2']

R3 = replace [id1,'B2'], [id2,'C2']
     by [id1 - id2,'m']";
        assert_eq!(printed, expected);
    }

    #[test]
    fn example1_initial_multiset_matches_paper() {
        let conv = dataflow_to_gamma(&fig1()).unwrap();
        assert_eq!(
            conv.initial.to_string(),
            "{[1,'A1'], [2,'D1'], [3,'C1'], [5,'B1']}"
        );
        let labels: Vec<&str> = conv.output_labels.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["m"]);
    }

    #[test]
    fn example1_gamma_execution_matches_dataflow() {
        let g = fig1();
        let conv = dataflow_to_gamma(&g).unwrap();
        let df = gammaflow_dataflow::engine::SeqEngine::new(&g)
            .run()
            .unwrap();
        let gm = SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 11)
            .run()
            .unwrap();
        assert_eq!(gm.status, Status::Stable);
        let out = Symbol::intern("m");
        assert_eq!(
            gm.multiset.project(|l| l == out),
            df.outputs.project(|l| l == out)
        );
    }

    #[test]
    fn steer_conversion_shape() {
        let mut b = GraphBuilder::new();
        let d = b.constant(7);
        let c = b.constant(1);
        let st = b.add_named(NodeKind::Steer, "S");
        let o1 = b.output("t");
        let o2 = b.output("f");
        b.connect_labelled(d, st, 0, "data");
        b.connect_labelled(c, st, 1, "ctl");
        b.connect_full(st, OutPort::True, o1, 0, Some("tout"));
        b.connect_full(st, OutPort::False, o2, 0, Some("fout"));
        let g = b.build().unwrap();
        let conv = dataflow_to_gamma(&g).unwrap();
        let printed = pretty_program(&conv.program);
        assert_eq!(
            printed,
            "S = replace [id1,'data'], [id2,'ctl']\n     by [id1,'tout'] if id2 == 1\n     by [id1,'fout'] else"
        );
    }

    #[test]
    fn inctag_merge_conversion_shape() {
        // inctag with initial + loop-back in-edges must produce the paper's
        // OneOf/disjunction form. A valid graph needs the loop-back to come
        // from a steer, so build the minimal loop.
        let mut b = GraphBuilder::new();
        let init = b.constant_named(3, "z");
        let it = b.add_named(NodeKind::IncTag, "R11");
        let cmp = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let st = b.add_named(NodeKind::Steer, "R16");
        let dec = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
        b.connect_labelled(init, it, 0, "A1");
        b.connect_labelled(it, cmp, 0, "B12");
        b.connect_labelled(it, st, 0, "B13");
        b.connect_labelled(cmp, st, 1, "B15");
        b.connect_full(st, OutPort::True, dec, 0, Some("B17"));
        b.connect_labelled(dec, it, 0, "A11");
        let g = b.build().unwrap();
        let conv = dataflow_to_gamma(&g).unwrap();
        assert!(conv.tagged);
        let r11 = conv.program.reaction("R11").unwrap();
        assert_eq!(
            gammaflow_lang::pretty_reaction(r11),
            "R11 = replace [id1,x,v]\n     by [id1,'B12',v + 1], [id1,'B13',v + 1] if x == 'A1' or x == 'A11'"
        );
        // And the whole converted loop runs to a stable, empty multiset
        // (the steer's false side is unconnected, like the paper's Fig. 2).
        let gm = SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 3)
            .run()
            .unwrap();
        assert_eq!(gm.status, Status::Stable);
        assert!(gm.multiset.is_empty(), "got {}", gm.multiset);
    }

    #[test]
    fn cmp_with_immediate_matches_r14_shape() {
        let mut b = GraphBuilder::new();
        let z = b.constant_named(3, "z");
        let cmp = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let o = b.output("o");
        b.connect_labelled(z, cmp, 0, "B12");
        b.connect_labelled(cmp, o, 0, "B14");
        let g = b.build().unwrap();
        let conv = dataflow_to_gamma(&g).unwrap();
        let printed = pretty_program(&conv.program);
        assert_eq!(
            printed,
            "R14 = replace [id1,'B12']\n     by [1,'B14'] if id1 > 0\n     by [0,'B14'] else"
        );
    }

    #[test]
    fn fanout_produces_one_element_per_edge() {
        let mut b = GraphBuilder::new();
        let x = b.constant(2);
        let y = b.constant(3);
        let add = b.add_named(NodeKind::Arith(BinOp::Add, None), "A");
        let o1 = b.output("o1");
        let o2 = b.output("o2");
        b.connect_labelled(x, add, 0, "in1");
        b.connect_labelled(y, add, 1, "in2");
        b.connect_labelled(add, o1, 0, "out1");
        b.connect_labelled(add, o2, 0, "out2");
        let g = b.build().unwrap();
        let conv = dataflow_to_gamma(&g).unwrap();
        let a = conv.program.reaction("A").unwrap();
        assert_eq!(a.clauses[0].outputs.len(), 2);
        let gm = SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 0)
            .run()
            .unwrap();
        assert!(gm.multiset.contains(&Element::pair(5, "out1")));
        assert!(gm.multiset.contains(&Element::pair(5, "out2")));
    }
}
