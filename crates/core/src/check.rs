//! Differential equivalence checking — the executable form of the paper's
//! §III-C "sketch of proof".
//!
//! The paper argues Algorithm 1 preserves the dataflow firing rule, tags,
//! and steer semantics. This module *tests* that claim mechanically on any
//! graph: run the graph on the dataflow engine, convert it with
//! Algorithm 1, run the Gamma program under several nondeterministic
//! schedules (and optionally the parallel interpreter), and compare the
//! observable results — the multiset projected onto output-edge labels
//! must equal the bag of elements collected at output sinks, tags
//! included.
//!
//! Confluence note: an Algorithm-1 image is deterministic in its
//! *observable* outputs even though execution order is not — every
//! reaction consumes edge-private labels, so firings commute. Seeds only
//! shuffle the interleaving; disagreement on any seed is a conversion bug
//! (this is exactly what the property tests hunt for).

use crate::df_to_gamma::{dataflow_to_gamma, ConvertError};
use gammaflow_dataflow::engine::{EngineConfig, EngineError, SeqEngine};
use gammaflow_dataflow::graph::DataflowGraph;
use gammaflow_gamma::parallel::{run_parallel, ParConfig};
use gammaflow_gamma::seq::{ExecConfig, ExecError, Selection, SeqInterpreter, Status};
use gammaflow_multiset::{ElementBag, FxHashSet, Symbol};
use std::fmt;

/// Outcome of one differential run.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// Whether every compared execution agreed.
    pub equivalent: bool,
    /// Output bag from the dataflow engine.
    pub dataflow_outputs: ElementBag,
    /// Projected final multisets per Gamma seed (seed, projection).
    pub gamma_outputs: Vec<(u64, ElementBag)>,
    /// Firings executed by the dataflow engine (non-root nodes).
    pub dataflow_firings: u64,
    /// Gamma firings for the first seed.
    pub gamma_firings: u64,
    /// Human-readable mismatch description, if any.
    pub mismatch: Option<String>,
}

/// Errors from the checker.
#[derive(Debug)]
pub enum CheckError {
    /// Conversion failed.
    Convert(ConvertError),
    /// The dataflow engine faulted.
    Dataflow(EngineError),
    /// The Gamma interpreter faulted.
    Gamma(ExecError),
    /// An execution hit its budget before stabilising.
    Budget(&'static str),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Convert(e) => write!(f, "conversion failed: {e}"),
            CheckError::Dataflow(e) => write!(f, "dataflow engine fault: {e}"),
            CheckError::Gamma(e) => write!(f, "gamma interpreter fault: {e}"),
            CheckError::Budget(which) => write!(f, "{which} execution exhausted its budget"),
        }
    }
}
impl std::error::Error for CheckError {}

impl From<ConvertError> for CheckError {
    fn from(e: ConvertError) -> Self {
        CheckError::Convert(e)
    }
}
impl From<EngineError> for CheckError {
    fn from(e: EngineError) -> Self {
        CheckError::Dataflow(e)
    }
}
impl From<ExecError> for CheckError {
    fn from(e: ExecError) -> Self {
        CheckError::Gamma(e)
    }
}

/// Options for [`check_equivalence`].
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Gamma seeds to try (each is an independent nondeterministic
    /// schedule).
    pub seeds: Vec<u64>,
    /// Also run the parallel Gamma interpreter with this many workers
    /// (0 = skip).
    pub parallel_workers: usize,
    /// Firing budget for both sides.
    pub max_firings: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seeds: vec![0, 1, 2],
            parallel_workers: 0,
            max_firings: 2_000_000,
        }
    }
}

/// Run the differential check on `graph`.
pub fn check_equivalence(
    graph: &DataflowGraph,
    config: &CheckConfig,
) -> Result<EquivReport, CheckError> {
    let df = SeqEngine::with_config(
        graph,
        EngineConfig {
            max_firings: config.max_firings,
            record_trace: false,
        },
    )
    .run()?;
    if df.status != gammaflow_dataflow::engine::DfStatus::Quiescent {
        return Err(CheckError::Budget("dataflow"));
    }

    let conv = dataflow_to_gamma(graph)?;
    let out_labels: FxHashSet<Symbol> = conv.output_labels.iter().copied().collect();

    let mut gamma_outputs = Vec::new();
    let mut mismatch = None;
    let mut gamma_firings = 0;
    for &seed in &config.seeds {
        let result = SeqInterpreter::with_config(
            &conv.program,
            conv.initial.clone(),
            ExecConfig {
                max_steps: config.max_firings,
                record_trace: false,
                selection: Selection::Seeded(seed),
                ..ExecConfig::default()
            },
        )?
        .run()?;
        if result.status != Status::Stable {
            return Err(CheckError::Budget("gamma"));
        }
        if seed == config.seeds[0] {
            gamma_firings = result.stats.firings_total();
        }
        let projected = result.multiset.project(|l| out_labels.contains(&l));
        if projected != df.outputs && mismatch.is_none() {
            mismatch = Some(format!(
                "seed {seed}: gamma {projected} != dataflow {}",
                df.outputs
            ));
        }
        gamma_outputs.push((seed, projected));
    }

    if config.parallel_workers > 0 {
        let par = run_parallel(
            &conv.program,
            conv.initial.clone(),
            &ParConfig {
                workers: config.parallel_workers,
                max_firings: config.max_firings,
                ..ParConfig::default()
            },
        )?;
        if par.exec.status != Status::Stable {
            return Err(CheckError::Budget("parallel gamma"));
        }
        let projected = par.exec.multiset.project(|l| out_labels.contains(&l));
        if projected != df.outputs && mismatch.is_none() {
            mismatch = Some(format!(
                "parallel: gamma {projected} != dataflow {}",
                df.outputs
            ));
        }
        gamma_outputs.push((u64::MAX, projected));
    }

    Ok(EquivReport {
        equivalent: mismatch.is_none(),
        dataflow_outputs: df.outputs,
        gamma_outputs,
        dataflow_firings: df.stats.fired_total(),
        gamma_firings,
        mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::graph::GraphBuilder;
    use gammaflow_dataflow::node::{Imm, NodeKind};
    use gammaflow_dataflow::OutPort;
    use gammaflow_multiset::value::{BinOp, CmpOp};

    fn fig1() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        b.build().unwrap()
    }

    fn fig2(y0: i64, z0: i64, x0: i64) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let y = b.constant_named(y0, "y");
        let z = b.constant_named(z0, "z");
        let x = b.constant_named(x0, "x");
        let r11 = b.add_named(NodeKind::IncTag, "R11");
        let r12 = b.add_named(NodeKind::IncTag, "R12");
        let r13 = b.add_named(NodeKind::IncTag, "R13");
        let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let r15 = b.add_named(NodeKind::Steer, "R15");
        let r16 = b.add_named(NodeKind::Steer, "R16");
        let r17 = b.add_named(NodeKind::Steer, "R17");
        let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
        let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R19");
        let out = b.output("result");
        b.connect_labelled(y, r11, 0, "A1");
        b.connect_labelled(z, r12, 0, "B1");
        b.connect_labelled(x, r13, 0, "C1");
        b.connect_labelled(r11, r15, 0, "A12");
        b.connect_labelled(r12, r14, 0, "B12");
        b.connect_labelled(r12, r16, 0, "B13");
        b.connect_labelled(r13, r17, 0, "C12");
        b.connect_labelled(r14, r15, 1, "B14");
        b.connect_labelled(r14, r16, 1, "B15");
        b.connect_labelled(r14, r17, 1, "B16");
        b.connect_full(r15, OutPort::True, r11, 0, Some("A11"));
        b.connect_full(r15, OutPort::True, r19, 0, Some("A13"));
        b.connect_full(r16, OutPort::True, r18, 0, Some("B17"));
        b.connect_full(r17, OutPort::True, r19, 1, Some("C13"));
        b.connect_labelled(r18, r12, 0, "B11");
        b.connect_labelled(r19, r13, 0, "C11");
        b.connect_full(r17, OutPort::False, out, 0, Some("xout"));
        b.build().unwrap()
    }

    #[test]
    fn fig1_checks_equivalent() {
        let report = check_equivalence(&fig1(), &CheckConfig::default()).unwrap();
        assert!(report.equivalent, "{:?}", report.mismatch);
        // Both models perform the same number of operator firings: 3
        // reactions vs R1,R2,R3 (the dataflow count also includes the 4
        // roots).
        assert_eq!(report.gamma_firings, 3);
        assert_eq!(report.dataflow_firings, 7);
    }

    #[test]
    fn fig2_checks_equivalent_with_parallel() {
        let config = CheckConfig {
            seeds: vec![0, 1],
            parallel_workers: 3,
            ..CheckConfig::default()
        };
        let report = check_equivalence(&fig2(5, 4, 100), &config).unwrap();
        assert!(report.equivalent, "{:?}", report.mismatch);
        // All runs observed x = 100 + 5*4 = 120 at tag 5.
        for (_, out) in &report.gamma_outputs {
            assert_eq!(out.len(), 1);
            let e = &out.sorted_elements()[0];
            assert_eq!(e.value, gammaflow_multiset::Value::int(120));
            assert_eq!(e.tag.0, 5);
        }
    }

    #[test]
    fn zero_iteration_loop_checks() {
        let report = check_equivalence(&fig2(7, 0, 42), &CheckConfig::default()).unwrap();
        assert!(report.equivalent, "{:?}", report.mismatch);
    }

    #[test]
    fn divergent_graph_reports_budget() {
        // while(true) loop.
        let mut b = GraphBuilder::new();
        let i0 = b.constant_named(0, "i0");
        let inc = b.add_named(NodeKind::IncTag, "inctag");
        let steer = b.add_named(NodeKind::Steer, "steer");
        let bump = b.add_named(NodeKind::Arith(BinOp::Add, Some(Imm::right(1))), "bump");
        let cmp = b.add_named(NodeKind::Cmp(CmpOp::Ge, Some(Imm::right(i64::MIN))), "true");
        b.connect(i0, inc, 0);
        b.connect(inc, cmp, 0);
        b.connect(inc, steer, 0);
        b.connect(cmp, steer, 1);
        b.connect_full(steer, OutPort::True, bump, 0, None);
        b.connect(bump, inc, 0);
        let g = b.build().unwrap();
        let config = CheckConfig {
            max_firings: 1000,
            ..CheckConfig::default()
        };
        assert!(matches!(
            check_equivalence(&g, &config),
            Err(CheckError::Budget("dataflow"))
        ));
    }
}
