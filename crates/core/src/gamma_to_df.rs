//! Algorithm 2: converting Gamma reactions into dataflow graphs.
//!
//! The paper's Algorithm 2 builds one small dataflow graph per reaction
//! (replace-list entries → root nodes; by-conditions → comparison + steer
//! nodes; by-values → arithmetic nodes) and then — step 2, Fig. 4 — maps
//! the initial multiset onto *replicated instances* of those graphs. Two
//! parts the paper explicitly leaves open are implemented here as well:
//!
//! * **Node-kind recovery** (the paper's closing future-work item):
//!   recognising steer / inctag / comparison reactions "via the analysis of
//!   the behaviour of Gamma reactions". [`recover_shape`] classifies a
//!   reaction as [`Shape::IncTag`], [`Shape::Cmp`], [`Shape::Steer`] or
//!   generic by its syntactic shape, so converting the paper's Example-2
//!   reaction set reproduces Fig. 2's triangles and lozenges rather than a
//!   soup of generic operators.
//! * **Whole-program stitching** ([`gamma_to_dataflow`]): when every label
//!   has a unique consumer pattern (true of every Algorithm-1 image),
//!   per-reaction subgraphs can be wired producer-to-consumer into one
//!   graph, initial-multiset elements becoming constant roots and
//!   unconsumed labels becoming output sinks. This is the exact inverse of
//!   Algorithm 1, giving the round-trip tests their teeth.
//!
//! Known scope limits (shared with the paper, documented in DESIGN.md):
//! `where` conditions, clause chains beyond `if`/`else`, and variable
//! output labels have no static-dataflow counterpart and are rejected; a
//! consumed-but-unused operand loses its synchronisation role (recorded in
//! [`SubgraphPorts::unused_inputs`]).

use gammaflow_dataflow::graph::{DataflowGraph, GraphBuilder, NodeId, OutPort};
use gammaflow_dataflow::node::{Imm, NodeKind};
use gammaflow_gamma::compiled::CompiledReaction;
use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{
    ElementSpec, GammaProgram, Guard, LabelPat, LabelSpec, Pattern, ReactionSpec, TagSpec, ValuePat,
};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{ElementBag, FxHashMap, Symbol, Value};
use std::fmt;

/// Errors from Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Alg2Error {
    /// `where` conditions gate firing without consuming — dataflow has no
    /// counterpart (a node always fires on a full operand set).
    UnsupportedWhere(String),
    /// By-chains other than `Always` or `If`/`Else` pairs.
    UnsupportedClauses(String),
    /// Output labels must be literals to become static edges.
    VarOutputLabel(String),
    /// Output tags must be `v`, `v + 1`, or elided.
    UnsupportedTag(String),
    /// An expression uses a label/tag variable as a value.
    NonValueVar(String),
    /// Stitching: a label consumed by more than one pattern is inherently
    /// nondeterministic (any consumer may take it) — not expressible as a
    /// static edge.
    SharedLabelConsumer(Symbol),
    /// Stitching: two different clauses/reactions produce the same label.
    SharedLabelProducer(Symbol),
    /// Stitching: the initial multiset holds several elements (or a
    /// repeated element) for one label; use [`map_multiset`] instead.
    AmbiguousInitial(Symbol),
    /// Stitching: a consumed label has neither a producer nor an initial
    /// element.
    DanglingLabel(Symbol),
    /// The reaction failed spec validation or graph construction.
    Spec(String),
}

impl fmt::Display for Alg2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Alg2Error::UnsupportedWhere(r) => {
                write!(
                    f,
                    "reaction {r}: `where` conditions have no dataflow counterpart"
                )
            }
            Alg2Error::UnsupportedClauses(r) => {
                write!(
                    f,
                    "reaction {r}: only `Always` or `If`/`Else` clause chains convert"
                )
            }
            Alg2Error::VarOutputLabel(r) => {
                write!(
                    f,
                    "reaction {r}: variable output labels cannot become static edges"
                )
            }
            Alg2Error::UnsupportedTag(r) => {
                write!(
                    f,
                    "reaction {r}: output tags must be `v`, `v + 1`, or elided"
                )
            }
            Alg2Error::NonValueVar(v) => {
                write!(f, "expression uses non-value variable `{v}`")
            }
            Alg2Error::SharedLabelConsumer(l) => {
                write!(f, "label `{l}` has multiple consumer patterns")
            }
            Alg2Error::SharedLabelProducer(l) => {
                write!(f, "label `{l}` has multiple producers")
            }
            Alg2Error::AmbiguousInitial(l) => {
                write!(f, "label `{l}` is ambiguous in the initial multiset")
            }
            Alg2Error::DanglingLabel(l) => {
                write!(f, "label `{l}` is consumed but never produced or seeded")
            }
            Alg2Error::Spec(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for Alg2Error {}

/// Recovered node kind of a reaction (the paper's future-work analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Single input re-emitted with `tag + 1`: an inctag node.
    IncTag,
    /// `by 1-outputs if cond / by 0-outputs else`: a comparison node.
    Cmp,
    /// `by data-outputs if ctl / by data-outputs else`: a steer node.
    Steer,
    /// Anything else convertible: a tree of arithmetic/comparison nodes,
    /// possibly behind condition-driven steers.
    Generic,
}

/// Tag form of an output element relative to the reaction's tag variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagForm {
    Same,
    Inc,
}

fn tag_form(spec: &ElementSpec, tag_var: Option<Symbol>) -> Result<TagForm, ()> {
    match (&spec.tag, tag_var) {
        (TagSpec::Zero, _) => Ok(TagForm::Same),
        (TagSpec::Expr(Expr::Var(v)), Some(tv)) if *v == tv => Ok(TagForm::Same),
        (TagSpec::Expr(Expr::Bin(BinOp::Add, a, b)), Some(tv)) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Lit(Value::Int(1))) if *v == tv => Ok(TagForm::Inc),
            (Expr::Lit(Value::Int(1)), Expr::Var(v)) if *v == tv => Ok(TagForm::Inc),
            _ => Err(()),
        },
        _ => Err(()),
    }
}

fn pattern_tag_var(p: &Pattern) -> Option<Symbol> {
    match &p.tag {
        gammaflow_gamma::spec::TagPat::Var(v) => Some(*v),
        _ => None,
    }
}

fn pattern_value_var(p: &Pattern) -> Option<Symbol> {
    match &p.value {
        ValuePat::Var(v) => Some(*v),
        _ => None,
    }
}

fn lit_label(spec: &ElementSpec) -> Option<Symbol> {
    match &spec.label {
        LabelSpec::Lit(l) => Some(*l),
        LabelSpec::Var(_) => None,
    }
}

/// Is `cond` a truth test on the control variable `cv`? Accepts the
/// paper's `id2 == 1` and its reduced examples' `id2 > 0`.
fn is_control_test(cond: &Expr, cv: Symbol) -> bool {
    match cond {
        Expr::Cmp(CmpOp::Eq, a, b) => {
            matches!((a.as_ref(), b.as_ref()),
                (Expr::Var(v), Expr::Lit(Value::Int(1))) | (Expr::Lit(Value::Int(1)), Expr::Var(v))
                    if *v == cv)
        }
        Expr::Cmp(CmpOp::Gt, a, b) => {
            matches!((a.as_ref(), b.as_ref()),
                (Expr::Var(v), Expr::Lit(Value::Int(0))) if *v == cv)
        }
        _ => false,
    }
}

/// Classify a reaction's shape (see [`Shape`]).
pub fn recover_shape(r: &ReactionSpec) -> Shape {
    let shared_tag = r.patterns.first().and_then(pattern_tag_var);

    // IncTag: one input, one Always clause, outputs re-emit the input value
    // at tag + 1.
    if r.patterns.len() == 1 && r.clauses.len() == 1 && r.where_cond.is_none() {
        if let (Guard::Always, Some(vv)) = (&r.clauses[0].guard, pattern_value_var(&r.patterns[0]))
        {
            let all_inc = !r.clauses[0].outputs.is_empty()
                && r.clauses[0].outputs.iter().all(|o| {
                    o.value == Expr::Var(vv)
                        && lit_label(o).is_some()
                        && tag_form(o, shared_tag) == Ok(TagForm::Inc)
                });
            if all_inc {
                return Shape::IncTag;
            }
        }
    }

    // Cmp / Steer: exactly If + Else.
    if r.clauses.len() == 2 && r.where_cond.is_none() {
        if let (Guard::If(cond), Guard::Else) = (&r.clauses[0].guard, &r.clauses[1].guard) {
            let (ifs, elses) = (&r.clauses[0].outputs, &r.clauses[1].outputs);
            let same_tags = ifs
                .iter()
                .chain(elses.iter())
                .all(|o| tag_form(o, shared_tag) == Ok(TagForm::Same));

            // Cmp: same label lists, if-branch all 1s, else-branch all 0s.
            if same_tags
                && !ifs.is_empty()
                && ifs.len() == elses.len()
                && ifs.iter().all(|o| o.value == Expr::int(1))
                && elses.iter().all(|o| o.value == Expr::int(0))
                && ifs
                    .iter()
                    .zip(elses.iter())
                    .all(|(a, b)| lit_label(a).is_some() && lit_label(a) == lit_label(b))
            {
                return Shape::Cmp;
            }

            // Steer: two inputs, condition is a truth test on one (the
            // control), both branches re-emit the other (the data).
            if same_tags && r.patterns.len() == 2 {
                let vals: Vec<Option<Symbol>> = r.patterns.iter().map(pattern_value_var).collect();
                if let (Some(v0), Some(v1)) = (vals[0], vals[1]) {
                    for (cv, dv) in [(v1, v0), (v0, v1)] {
                        if is_control_test(cond, cv)
                            && !ifs.is_empty()
                            && ifs
                                .iter()
                                .chain(elses.iter())
                                .all(|o| o.value == Expr::Var(dv) && lit_label(o).is_some())
                        {
                            return Shape::Steer;
                        }
                    }
                }
            }
        }
    }

    Shape::Generic
}

/// Where a subgraph expects a pattern's value, and what it offers per
/// produced label.
#[derive(Debug, Clone)]
pub struct SubgraphPorts {
    /// For each pattern index: the `(node, port)` pairs its value feeds.
    pub inputs: Vec<Vec<(NodeId, usize)>>,
    /// Produced labels with their source `(node, out-port)`.
    pub outputs: Vec<(Symbol, NodeId, OutPort)>,
    /// Pattern indices whose value gates firing in Gamma but has no
    /// dataflow consumer (a pure-synchronisation operand; see DESIGN.md).
    pub unused_inputs: Vec<usize>,
    /// The recovered shape.
    pub shape: Shape,
}

impl SubgraphPorts {
    fn new(npatterns: usize, shape: Shape) -> SubgraphPorts {
        SubgraphPorts {
            inputs: vec![Vec::new(); npatterns],
            outputs: Vec::new(),
            unused_inputs: Vec::new(),
            shape,
        }
    }
}

/// Source of an operand during expression compilation: either a concrete
/// node output, or "pattern i's incoming value" (wired by the caller).
#[derive(Debug, Clone, Copy)]
enum Operand {
    Def(NodeId, OutPort),
    Input(usize),
}

struct ExprCompiler<'a> {
    b: &'a mut GraphBuilder,
    env: FxHashMap<Symbol, Operand>,
    raw_uses: &'a mut Vec<Vec<(NodeId, usize)>>,
    name: &'a str,
}

fn fold_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Lit(Value::Int(x)) => Some(*x),
        Expr::Un(gammaflow_multiset::value::UnOp::Neg, a) => fold_int(a).map(i64::wrapping_neg),
        _ => None,
    }
}

impl ExprCompiler<'_> {
    fn wire(&mut self, op: Operand, node: NodeId, port: usize) {
        match op {
            Operand::Def(n, p) => {
                self.b.connect_full(n, p, node, port, None);
            }
            Operand::Input(i) => self.raw_uses[i].push((node, port)),
        }
    }

    /// Force an operand into a concrete def, inserting an identity node
    /// (`x + 0`) only for bare pass-throughs of inputs.
    fn materialise(&mut self, op: Operand) -> (NodeId, OutPort) {
        match op {
            Operand::Def(n, p) => (n, p),
            Operand::Input(i) => {
                let id = self.b.add_named(
                    NodeKind::Arith(BinOp::Add, Some(Imm::right(0))),
                    format!("{}_pass{i}", self.name),
                );
                self.raw_uses[i].push((id, 0));
                (id, OutPort::True)
            }
        }
    }

    fn compile(&mut self, e: &Expr) -> Result<Operand, Alg2Error> {
        match e {
            Expr::Lit(v) => {
                let n = self.b.add(NodeKind::Const(v.clone()));
                Ok(Operand::Def(n, OutPort::True))
            }
            Expr::Var(v) => self
                .env
                .get(v)
                .copied()
                .ok_or_else(|| Alg2Error::NonValueVar(v.to_string())),
            Expr::Un(op, a) => {
                let ad = self.compile(a)?;
                let n = self.b.add(NodeKind::Un(*op));
                self.wire(ad, n, 0);
                Ok(Operand::Def(n, OutPort::True))
            }
            Expr::Bin(op, a, b) => {
                let op = *op;
                self.binary(move |imm| NodeKind::Arith(op, imm), a, b)
            }
            Expr::Cmp(op, a, b) => {
                let op = *op;
                self.binary(move |imm| NodeKind::Cmp(op, imm), a, b)
            }
        }
    }

    fn binary(
        &mut self,
        mk: impl Fn(Option<Imm>) -> NodeKind,
        a: &Expr,
        b: &Expr,
    ) -> Result<Operand, Alg2Error> {
        if let Some(bi) = fold_int(b) {
            let ad = self.compile(a)?;
            let n = self.b.add(mk(Some(Imm::right(bi))));
            self.wire(ad, n, 0);
            return Ok(Operand::Def(n, OutPort::True));
        }
        if let Some(ai) = fold_int(a) {
            let bd = self.compile(b)?;
            let n = self.b.add(mk(Some(Imm::left(ai))));
            self.wire(bd, n, 0);
            return Ok(Operand::Def(n, OutPort::True));
        }
        let ad = self.compile(a)?;
        let bd = self.compile(b)?;
        let n = self.b.add(mk(None));
        self.wire(ad, n, 0);
        self.wire(bd, n, 1);
        Ok(Operand::Def(n, OutPort::True))
    }
}

/// Build the operator subgraph of one reaction into `b`, leaving inputs
/// unwired (returned as port lists) — the shared machinery behind
/// [`reaction_to_graph`], [`gamma_to_dataflow`], and [`map_multiset`].
pub fn build_reaction_subgraph(
    b: &mut GraphBuilder,
    r: &ReactionSpec,
) -> Result<SubgraphPorts, Alg2Error> {
    r.validate().map_err(|e| Alg2Error::Spec(e.to_string()))?;
    if r.where_cond.is_some() {
        return Err(Alg2Error::UnsupportedWhere(r.name.clone()));
    }
    let shape = recover_shape(r);
    let shared_tag = r.patterns.first().and_then(pattern_tag_var);
    let mut ports = SubgraphPorts::new(r.patterns.len(), shape);

    match shape {
        Shape::IncTag => {
            let it = b.add_named(NodeKind::IncTag, format!("{}_inctag", r.name));
            ports.inputs[0].push((it, 0));
            for o in &r.clauses[0].outputs {
                let label = lit_label(o).expect("checked by recover_shape");
                ports.outputs.push((label, it, OutPort::True));
            }
        }
        Shape::Cmp => {
            let Guard::If(cond) = &r.clauses[0].guard else {
                unreachable!()
            };
            let Expr::Cmp(op, lhs, rhs) = cond else {
                // recover_shape accepted it, but only single comparisons
                // become a single node; other boolean shapes go generic.
                return build_generic_entry(b, r, shared_tag, ports);
            };
            let var_index = |side: &Expr| -> Option<usize> {
                let Expr::Var(v) = side else { return None };
                r.patterns
                    .iter()
                    .position(|p| pattern_value_var(p) == Some(*v))
            };
            let node = match (fold_int(lhs), fold_int(rhs)) {
                (None, Some(bi)) => {
                    let Some(idx) = var_index(lhs) else {
                        return build_generic_entry(b, r, shared_tag, ports);
                    };
                    let n = b.add_named(
                        NodeKind::Cmp(*op, Some(Imm::right(bi))),
                        format!("{}_cmp", r.name),
                    );
                    ports.inputs[idx].push((n, 0));
                    n
                }
                (Some(ai), None) => {
                    let Some(idx) = var_index(rhs) else {
                        return build_generic_entry(b, r, shared_tag, ports);
                    };
                    let n = b.add_named(
                        NodeKind::Cmp(*op, Some(Imm::left(ai))),
                        format!("{}_cmp", r.name),
                    );
                    ports.inputs[idx].push((n, 0));
                    n
                }
                (None, None) => {
                    let (Some(li), Some(ri)) = (var_index(lhs), var_index(rhs)) else {
                        return build_generic_entry(b, r, shared_tag, ports);
                    };
                    let n = b.add_named(NodeKind::Cmp(*op, None), format!("{}_cmp", r.name));
                    ports.inputs[li].push((n, 0));
                    ports.inputs[ri].push((n, 1));
                    n
                }
                (Some(_), Some(_)) => return Err(Alg2Error::UnsupportedClauses(r.name.clone())),
            };
            for o in &r.clauses[0].outputs {
                let label = lit_label(o).expect("checked by recover_shape");
                ports.outputs.push((label, node, OutPort::True));
            }
        }
        Shape::Steer => {
            let Guard::If(cond) = &r.clauses[0].guard else {
                unreachable!()
            };
            let vals: Vec<Symbol> = r
                .patterns
                .iter()
                .map(|p| pattern_value_var(p).expect("checked by recover_shape"))
                .collect();
            let (ctl_idx, data_idx) = if is_control_test(cond, vals[1]) {
                (1, 0)
            } else {
                (0, 1)
            };
            let st = b.add_named(NodeKind::Steer, format!("{}_steer", r.name));
            ports.inputs[data_idx].push((st, 0));
            ports.inputs[ctl_idx].push((st, 1));
            for o in &r.clauses[0].outputs {
                let label = lit_label(o).expect("checked by recover_shape");
                ports.outputs.push((label, st, OutPort::True));
            }
            for o in &r.clauses[1].outputs {
                let label = lit_label(o).expect("checked by recover_shape");
                ports.outputs.push((label, st, OutPort::False));
            }
        }
        Shape::Generic => {
            return build_generic_entry(b, r, shared_tag, ports);
        }
    }

    note_unused(&mut ports);
    Ok(ports)
}

fn note_unused(ports: &mut SubgraphPorts) {
    ports.unused_inputs = ports
        .inputs
        .iter()
        .enumerate()
        .filter(|(_, uses)| uses.is_empty())
        .map(|(i, _)| i)
        .collect();
}

fn build_generic_entry(
    b: &mut GraphBuilder,
    r: &ReactionSpec,
    shared_tag: Option<Symbol>,
    mut ports: SubgraphPorts,
) -> Result<SubgraphPorts, Alg2Error> {
    ports.shape = Shape::Generic;
    build_generic(b, r, shared_tag, &mut ports)?;
    note_unused(&mut ports);
    Ok(ports)
}

/// Generic conversion: Algorithm 2 lines 5–22. Pattern values flow
/// (through condition steers when a guard exists) into expression trees.
fn build_generic(
    b: &mut GraphBuilder,
    r: &ReactionSpec,
    shared_tag: Option<Symbol>,
    ports: &mut SubgraphPorts,
) -> Result<(), Alg2Error> {
    let (cond, else_outputs) = match r.clauses.as_slice() {
        [c] if matches!(c.guard, Guard::Always) => (None, None),
        [c] => match &c.guard {
            Guard::If(e) => (Some(e.clone()), None),
            _ => return Err(Alg2Error::UnsupportedClauses(r.name.clone())),
        },
        [c1, c2] => match (&c1.guard, &c2.guard) {
            (Guard::If(e), Guard::Else) => (Some(e.clone()), Some(&c2.outputs)),
            _ => return Err(Alg2Error::UnsupportedClauses(r.name.clone())),
        },
        _ => return Err(Alg2Error::UnsupportedClauses(r.name.clone())),
    };

    let vars: Vec<Option<Symbol>> = r.patterns.iter().map(pattern_value_var).collect();
    let mut raw_uses: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); r.patterns.len()];

    // Base environment: every pattern value is an Input operand.
    let base_env = |vars: &[Option<Symbol>]| -> FxHashMap<Symbol, Operand> {
        vars.iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (v, Operand::Input(i))))
            .collect()
    };

    // Condition subgraph (reads raw inputs).
    let ctl: Option<(NodeId, OutPort)> = match &cond {
        None => None,
        Some(c) => {
            let mut ec = ExprCompiler {
                b,
                env: base_env(&vars),
                raw_uses: &mut raw_uses,
                name: &r.name,
            };
            let op = ec.compile(c)?;
            Some(ec.materialise(op))
        }
    };

    // With a condition, pattern values used by clause outputs flow through
    // per-pattern steers (Algorithm 2 lines 10–11).
    let mut steer_of: Vec<Option<NodeId>> = vec![None; r.patterns.len()];
    if let Some((ctl_node, ctl_port)) = ctl {
        for (i, v) in vars.iter().enumerate() {
            let Some(v) = v else { continue };
            let used = r
                .clauses
                .iter()
                .any(|c| c.outputs.iter().any(|o| o.value.vars().contains(v)));
            if used {
                let st = b.add_named(NodeKind::Steer, format!("{}_steer{i}", r.name));
                raw_uses[i].push((st, 0));
                b.connect_full(ctl_node, ctl_port, st, 1, None);
                steer_of[i] = Some(st);
            }
        }
    }

    let compile_outputs = |b: &mut GraphBuilder,
                           outputs: &[ElementSpec],
                           branch: OutPort,
                           raw_uses: &mut Vec<Vec<(NodeId, usize)>>,
                           out: &mut Vec<(Symbol, NodeId, OutPort)>|
     -> Result<(), Alg2Error> {
        let mut env: FxHashMap<Symbol, Operand> = FxHashMap::default();
        for (i, v) in vars.iter().enumerate() {
            let Some(v) = v else { continue };
            match steer_of[i] {
                Some(st) => {
                    env.insert(*v, Operand::Def(st, branch));
                }
                None => {
                    env.insert(*v, Operand::Input(i));
                }
            }
        }
        for o in outputs {
            let label = lit_label(o).ok_or_else(|| Alg2Error::VarOutputLabel(r.name.clone()))?;
            let form =
                tag_form(o, shared_tag).map_err(|_| Alg2Error::UnsupportedTag(r.name.clone()))?;
            let mut ec = ExprCompiler {
                b,
                env: env.clone(),
                raw_uses,
                name: &r.name,
            };
            let operand = ec.compile(&o.value)?;
            let def = ec.materialise(operand);
            let final_def = match form {
                TagForm::Same => def,
                TagForm::Inc => {
                    let it = b.add_named(NodeKind::IncTag, format!("{}_inc", r.name));
                    b.connect_full(def.0, def.1, it, 0, None);
                    (it, OutPort::True)
                }
            };
            out.push((label, final_def.0, final_def.1));
        }
        Ok(())
    };

    compile_outputs(
        b,
        &r.clauses[0].outputs,
        OutPort::True,
        &mut raw_uses,
        &mut ports.outputs,
    )?;
    if let Some(outs) = else_outputs {
        compile_outputs(b, outs, OutPort::False, &mut raw_uses, &mut ports.outputs)?;
    }

    ports.inputs = raw_uses;
    Ok(())
}

/// Algorithm 2 step 1: a standalone dataflow graph for one reaction. Root
/// constants are placeholders (value 0) that [`map_multiset`] later binds
/// to actual elements; outputs go to sinks labelled by output label.
pub fn reaction_to_graph(r: &ReactionSpec) -> Result<DataflowGraph, Alg2Error> {
    let mut b = GraphBuilder::new();
    let ports = build_reaction_subgraph(&mut b, r)?;
    finish_standalone(&mut b, r, &ports, None, "");
    b.build().map_err(|es| {
        Alg2Error::Spec(
            es.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })
}

/// Wire const roots and output sinks around a subgraph. `values` provides
/// per-pattern root values (placeholder 0 when absent); `suffix`
/// disambiguates labels across instances.
fn finish_standalone(
    b: &mut GraphBuilder,
    r: &ReactionSpec,
    ports: &SubgraphPorts,
    values: Option<&[Value]>,
    suffix: &str,
) {
    for (i, uses) in ports.inputs.iter().enumerate() {
        let value = values.map(|vs| vs[i].clone()).unwrap_or(Value::Int(0));
        let root = b.add_named(
            NodeKind::Const(value),
            format!("{}_root{i}{suffix}", r.name),
        );
        for &(node, port) in uses {
            b.connect(root, node, port);
        }
    }
    let mut seen: FxHashMap<Symbol, usize> = FxHashMap::default();
    for (label, node, port) in &ports.outputs {
        let n = *seen.entry(*label).and_modify(|n| *n += 1).or_insert(0usize);
        let edge_label = if n == 0 && suffix.is_empty() {
            label.as_str().to_string()
        } else {
            format!("{label}{suffix}_{n}")
        };
        let sink = b.add_named(NodeKind::Output, format!("{label}{suffix}_sink{n}"));
        b.connect_full(*node, *port, sink, 0, Some(&edge_label));
    }
}

/// Whole-program stitching: the inverse of Algorithm 1. Requires every
/// label to have at most one consumer pattern and one producer, and the
/// initial multiset to hold at most one element per label.
pub fn gamma_to_dataflow(
    prog: &GammaProgram,
    initial: &ElementBag,
) -> Result<DataflowGraph, Alg2Error> {
    let mut b = GraphBuilder::new();
    let mut subs: Vec<SubgraphPorts> = Vec::with_capacity(prog.reactions.len());
    for r in &prog.reactions {
        let ports = build_reaction_subgraph(&mut b, r)?;
        subs.push(ports);
    }

    // label → (consumer reaction, pattern index); duplicate = error.
    let mut consumer: FxHashMap<Symbol, (usize, usize)> = FxHashMap::default();
    for (ri, r) in prog.reactions.iter().enumerate() {
        for (pi, p) in r.patterns.iter().enumerate() {
            let labels: Vec<Symbol> = match &p.label {
                LabelPat::Lit(l) => vec![*l],
                LabelPat::OneOf(ls, _) => ls.clone(),
                LabelPat::Var(_) => return Err(Alg2Error::UnsupportedClauses(r.name.clone())),
            };
            for l in labels {
                if consumer.insert(l, (ri, pi)).is_some() {
                    return Err(Alg2Error::SharedLabelConsumer(l));
                }
            }
        }
    }

    // label → producing (node, out-port).
    let mut producer: FxHashMap<Symbol, (NodeId, OutPort)> = FxHashMap::default();
    for ports in &subs {
        for (label, node, port) in &ports.outputs {
            if producer.insert(*label, (*node, *port)).is_some() {
                return Err(Alg2Error::SharedLabelProducer(*label));
            }
        }
    }

    // Initial multiset → constant roots (at most one element per label).
    let mut initial_of: FxHashMap<Symbol, Value> = FxHashMap::default();
    for (e, count) in initial.iter_counts() {
        if count > 1 || initial_of.insert(e.label, e.value.clone()).is_some() {
            return Err(Alg2Error::AmbiguousInitial(e.label));
        }
    }

    // Wire consumers.
    let mut consumed_initial: Vec<Symbol> = Vec::new();
    for (ri, r) in prog.reactions.iter().enumerate() {
        for (pi, p) in r.patterns.iter().enumerate() {
            let labels: Vec<Symbol> = match &p.label {
                LabelPat::Lit(l) => vec![*l],
                LabelPat::OneOf(ls, _) => ls.clone(),
                LabelPat::Var(_) => unreachable!("checked above"),
            };
            for l in labels {
                // Sources: a producer, an initial element, or both (a label
                // that is seeded and also regenerated).
                let mut sources: Vec<(NodeId, OutPort, String)> = Vec::new();
                if let Some(&(node, port)) = producer.get(&l) {
                    sources.push((node, port, l.as_str().to_string()));
                }
                if let Some(v) = initial_of.get(&l).cloned() {
                    let root = b.add_named(NodeKind::Const(v), format!("init_{l}"));
                    let suffix = if sources.is_empty() {
                        l.as_str().to_string()
                    } else {
                        format!("{l}__init")
                    };
                    sources.push((root, OutPort::True, suffix));
                    consumed_initial.push(l);
                }
                if sources.is_empty() {
                    return Err(Alg2Error::DanglingLabel(l));
                }
                let uses = subs[ri].inputs[pi].clone();
                for (src_node, src_port, base_label) in sources {
                    for (k, &(node, port)) in uses.iter().enumerate() {
                        let edge_label = if k == 0 {
                            base_label.clone()
                        } else {
                            format!("{base_label}__{k}")
                        };
                        b.connect_full(src_node, src_port, node, port, Some(&edge_label));
                    }
                }
            }
        }
    }
    for l in consumed_initial {
        initial_of.remove(&l);
    }

    // Unconsumed produced labels → output sinks; untouched initial
    // elements become observable constants.
    let mut produced: Vec<(Symbol, NodeId, OutPort)> =
        producer.iter().map(|(l, (n, p))| (*l, *n, *p)).collect();
    produced.sort_by_key(|(l, _, _)| *l);
    for (label, node, port) in produced {
        if !consumer.contains_key(&label) {
            let sink = b.add_named(NodeKind::Output, format!("{label}_sink"));
            b.connect_full(node, port, sink, 0, Some(label.as_str()));
        }
    }
    let mut leftovers: Vec<(Symbol, Value)> = initial_of.into_iter().collect();
    leftovers.sort_by_key(|(l, _)| *l);
    for (label, v) in leftovers {
        let root = b.add_named(NodeKind::Const(v), format!("init_{label}"));
        let sink = b.add_named(NodeKind::Output, format!("{label}_sink"));
        b.connect_full(root, OutPort::True, sink, 0, Some(label.as_str()));
    }

    b.build().map_err(|es| {
        Alg2Error::Spec(
            es.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })
}

/// Result of the Fig. 4 multiset mapping.
#[derive(Debug, Clone)]
pub struct MultisetMapping {
    /// One graph containing every instanced copy of the reaction subgraph.
    pub graph: DataflowGraph,
    /// Number of instances (Fig. 4 shows 3 for six elements, arity 2).
    pub instances: usize,
    /// Elements that fit no instance.
    pub leftover: ElementBag,
}

/// Algorithm 2 step 2 (Fig. 4): map the multiset onto replicated instances
/// of the reaction's graph. Greedy matching — each disjoint match of the
/// replace-list becomes one instance whose roots carry the matched values.
pub fn map_multiset(
    r: &ReactionSpec,
    m: &ElementBag,
    max_instances: usize,
) -> Result<MultisetMapping, Alg2Error> {
    let compiled = CompiledReaction::compile(r).map_err(|e| Alg2Error::Spec(e.to_string()))?;
    // `where` conditions are fine here (unlike full stitching): the matcher
    // enforces them when selecting tuples, so the instanced graphs — which
    // see only already-matched values — simply omit them.
    let subgraph_spec = {
        let mut s = r.clone();
        s.where_cond = None;
        s
    };
    let mut working = m.clone();
    let mut b = GraphBuilder::new();
    let mut instances = 0usize;

    while instances < max_instances {
        let found = compiled
            .find_match(0, &working, None)
            .map_err(|e| Alg2Error::Spec(e.to_string()))?;
        let Some(firing) = found else { break };
        let removed = working.remove_all(&firing.consumed);
        debug_assert!(removed);
        let ports = build_reaction_subgraph(&mut b, &subgraph_spec)?;
        let values: Vec<Value> = firing.consumed.iter().map(|e| e.value.clone()).collect();
        finish_standalone(
            &mut b,
            &subgraph_spec,
            &ports,
            Some(&values),
            &format!("_i{instances}"),
        );
        instances += 1;
    }

    let graph = b.build().map_err(|es| {
        Alg2Error::Spec(
            es.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    Ok(MultisetMapping {
        graph,
        instances,
        leftover: working,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_dataflow::engine::SeqEngine;
    use gammaflow_lang::parse_reaction;
    use gammaflow_multiset::Element;

    #[test]
    fn recovers_inctag_shape() {
        let r =
            parse_reaction("R11 = replace [id1,x,v] by [id1,'A12',v+1] if (x=='A1') or (x=='A11')")
                .unwrap();
        assert_eq!(recover_shape(&r), Shape::IncTag);
    }

    #[test]
    fn recovers_cmp_shape() {
        let r = parse_reaction(
            "R14 = replace [id1, 'B12', v]
             by [1,'B14',v], [1,'B15',v], [1,'B16',v] If id1 > 0
             by [0,'B14',v], [0,'B15',v], [0,'B16',v] else",
        )
        .unwrap();
        assert_eq!(recover_shape(&r), Shape::Cmp);
    }

    #[test]
    fn recovers_steer_shape() {
        let r = parse_reaction(
            "R16 = replace [id1,'B13',v], [id2,'B15',v]
             by [id1,'B17',v] If id2 == 1
             by 0 else",
        )
        .unwrap();
        assert_eq!(recover_shape(&r), Shape::Steer);
    }

    #[test]
    fn plain_arithmetic_is_generic() {
        let r = parse_reaction("R19 = replace [id1,'A13',v], [id2,'C13',v] by [id1+id2,'C11',v]")
            .unwrap();
        assert_eq!(recover_shape(&r), Shape::Generic);
    }

    #[test]
    fn reaction_to_graph_r1_shape() {
        // Paper's §III-A2 walk-through: R1 gives a vertex with two inputs
        // and one output.
        let r = parse_reaction("R1 = replace [id1,'A1'], [id2,'B1'] by [id1+id2,'B2']").unwrap();
        let g = reaction_to_graph(&r).unwrap();
        // 2 roots + 1 add + 1 sink.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.roots().count(), 2);
        assert_eq!(g.outputs().count(), 1);
        let labels: Vec<&str> = g.output_labels().iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["B2"]);
    }

    #[test]
    fn reaction_graph_executes_one_firing() {
        let r = parse_reaction("R = replace [a,'X'], [b,'Y'] by [a*b,'P']").unwrap();
        let mut b = GraphBuilder::new();
        let ports = build_reaction_subgraph(&mut b, &r).unwrap();
        finish_standalone(
            &mut b,
            &r,
            &ports,
            Some(&[Value::Int(6), Value::Int(7)]),
            "",
        );
        let g = b.build().unwrap();
        let out = SeqEngine::new(&g).run().unwrap();
        assert_eq!(out.outputs.sorted_elements(), vec![Element::pair(42, "P")]);
    }

    #[test]
    fn map_multiset_replicates_like_fig4() {
        // Fig. 4: a 2-ary reaction over six elements → 3 instances.
        let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
        let m: ElementBag = (1..=6).map(|v| Element::pair(v, "n")).collect();
        let mapping = map_multiset(&r, &m, usize::MAX).unwrap();
        assert_eq!(mapping.instances, 3);
        assert!(mapping.leftover.is_empty());
        // Executing the instanced graph performs one Gamma "round": three
        // sums totalling 21.
        let out = SeqEngine::new(&mapping.graph).run().unwrap();
        let total: i64 = out.outputs.iter().map(|e| e.value.as_int().unwrap()).sum();
        assert_eq!(total, 21);
        assert_eq!(out.outputs.len(), 3);
    }

    #[test]
    fn map_multiset_leftover_when_odd() {
        let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
        let m: ElementBag = (1..=7).map(|v| Element::pair(v, "n")).collect();
        let mapping = map_multiset(&r, &m, usize::MAX).unwrap();
        assert_eq!(mapping.instances, 3);
        assert_eq!(mapping.leftover.len(), 1);
    }

    #[test]
    fn map_multiset_respects_instance_cap() {
        let r = parse_reaction("R = replace [x,'n'] by [x,'out']").unwrap();
        let m: ElementBag = (1..=10).map(|v| Element::pair(v, "n")).collect();
        let mapping = map_multiset(&r, &m, 4).unwrap();
        assert_eq!(mapping.instances, 4);
        assert_eq!(mapping.leftover.len(), 6);
    }

    #[test]
    fn where_condition_rejected() {
        let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x,'n'] where x < y").unwrap();
        assert!(matches!(
            reaction_to_graph(&r),
            Err(Alg2Error::UnsupportedWhere(_))
        ));
    }

    #[test]
    fn stitching_example1_runs_like_gamma() {
        let prog = gammaflow_lang::parse_program(
            "R1 = replace [id1,'A1'], [id2,'B1'] by [id1+id2,'B2']
             R2 = replace [id1,'C1'], [id2,'D1'] by [id1*id2,'C2']
             R3 = replace [id1,'B2'], [id2,'C2'] by [id1-id2,'m']",
        )
        .unwrap();
        let initial: ElementBag = [
            Element::pair(1, "A1"),
            Element::pair(5, "B1"),
            Element::pair(3, "C1"),
            Element::pair(2, "D1"),
        ]
        .into_iter()
        .collect();
        let g = gamma_to_dataflow(&prog, &initial).unwrap();
        let out = SeqEngine::new(&g).run().unwrap();
        assert_eq!(out.outputs.sorted_elements(), vec![Element::pair(0, "m")]);
    }

    #[test]
    fn stitching_shared_consumer_rejected() {
        let prog = gammaflow_lang::parse_program(
            "R1 = replace [a,'n'] by [a,'x']
             R2 = replace [b,'n'] by [b,'y']",
        )
        .unwrap();
        let initial: ElementBag = [Element::pair(1, "n")].into_iter().collect();
        assert!(matches!(
            gamma_to_dataflow(&prog, &initial),
            Err(Alg2Error::SharedLabelConsumer(_))
        ));
    }

    #[test]
    fn stitching_dangling_label_rejected() {
        let prog = gammaflow_lang::parse_program("R1 = replace [a,'ghost'] by [a,'x']").unwrap();
        let initial = ElementBag::new();
        assert!(matches!(
            gamma_to_dataflow(&prog, &initial),
            Err(Alg2Error::DanglingLabel(_))
        ));
    }

    #[test]
    fn stitching_passes_through_unconsumed_initial() {
        let prog = gammaflow_lang::parse_program("R1 = replace [a,'in'] by [a+1,'out']").unwrap();
        let initial: ElementBag = [Element::pair(1, "in"), Element::pair(9, "spare")]
            .into_iter()
            .collect();
        let g = gamma_to_dataflow(&prog, &initial).unwrap();
        let out = SeqEngine::new(&g).run().unwrap();
        assert_eq!(
            out.outputs.sorted_elements(),
            vec![Element::pair(2, "out"), Element::pair(9, "spare")]
        );
    }
}
