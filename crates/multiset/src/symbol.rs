//! Interned label symbols.
//!
//! Edge labels (`'A1'`, `'B17'`, …) are the join keys of the whole system:
//! every reaction match and every token route goes through them. Interning
//! turns label comparison and hashing into `u32` operations and lets labels
//! be `Copy`, which keeps the hot matching structures allocation-free.
//!
//! The interner is a process-global, append-only table. Interned strings are
//! leaked (`Box::leak`) to hand out `&'static str`; the total leak is
//! bounded by the number of *distinct* labels ever created, which for this
//! workload (graph edges, node names) is small and proportional to program
//! size, not to execution length.

use crate::FxHashMap;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// An interned string label. Cheap to copy, compare, and hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: FxHashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: FxHashMap::default(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern a string, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let g = interner().read();
            if let Some(&id) = g.map.get(s) {
                return Symbol(id);
            }
        }
        let mut g = interner().write();
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(g.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// The raw interner index (stable within a process run; useful for
    /// dense per-label tables).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The symbol at a raw interner index. The inverse of
    /// [`Symbol::index`]; only indices obtained from it are meaningful
    /// (the element arena packs label indices into its ids).
    #[inline]
    pub(crate) fn from_index(index: u32) -> Symbol {
        Symbol(index)
    }

    /// Number of distinct symbols interned so far (for sizing dense tables).
    pub fn count() -> usize {
        interner().read().strings.len()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

// Serialize symbols as their strings so snapshots survive across processes.
impl Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("A1");
        let b = Symbol::intern("A1");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("distinct-x"), Symbol::intern("distinct-y"));
    }

    #[test]
    fn round_trips_string() {
        let s = Symbol::intern("B17");
        assert_eq!(s.as_str(), "B17");
        assert_eq!(s.to_string(), "B17");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent-label").index()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "from-str".into();
        let b: Symbol = String::from("from-str").into();
        assert_eq!(a, b);
    }
}
