//! Interned element payloads — per-label arenas keyed by [`ElemId`].
//!
//! [`Symbol`] already interns *labels*; this module extends
//! the same shape to whole element payloads. Every distinct `(value, tag)`
//! pair observed under a label is hash-consed into that label's arena
//! exactly once, and an [`ElemId`] — a packed `u64` of
//! `(label index << 32) | payload slot` — becomes the currency of the hot
//! paths: one hash at intern time, integer compares everywhere after.
//! Beta tokens, delta mailbox messages, and the bag index all carry ids;
//! guard evaluation borrows `&Value` straight out of the arena instead of
//! cloning.
//!
//! Payloads are leaked (`Box::leak`) so [`ElemId::resolve`] hands out
//! `&'static` references usable across worker threads without holding any
//! lock while the reference lives. The leak is bounded by the number of
//! *distinct* payloads ever interned — the same trade the label interner
//! makes, and the same quantity a hash-consed bag must retain anyway. The
//! arena is process-global (delta messages cross worker threads, so ids
//! must resolve identically everywhere); per-shard isolation on the read
//! path comes from payloads being written once at intern time and
//! immutable after, so concurrent readers share no mutable cache line.
//!
//! Snapshots never serialise ids: bags serialise `(element, count)` rows
//! and re-intern on load, so ids stay process-local and snapshots stay
//! portable across processes (where interning order, and therefore slot
//! numbering, differs).

use crate::element::{Element, Tag};
use crate::fxhash::FxHasher;
use crate::symbol::Symbol;
use crate::value::Value;
use crate::FxHashMap;
use parking_lot::RwLock;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// An interned element: `(label index << 32) | payload slot`.
///
/// Equality and hashing are single `u64` operations; the label is
/// recoverable by a shift with no arena access at all. Ids are
/// process-local (slot numbering depends on interning order) and are
/// never serialised — snapshots carry elements and re-intern on restore.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(u64);

/// One label's payload arena: a hash-consing table from `(value, tag)`
/// payloads to slots, plus the slot table of leaked payloads.
struct LabelArena {
    inner: RwLock<LabelInner>,
    /// Intern calls that found an existing slot (hash-cons hits).
    hits: AtomicU64,
    /// Estimated retained bytes: slot-table entries plus payload structs
    /// plus string heap.
    bytes: AtomicUsize,
}

#[derive(Default)]
struct LabelInner {
    /// Payload hash → slots with that hash (collision list; nearly always
    /// a single entry). Keying by hash avoids materialising an owned
    /// `(Value, Tag)` just to probe.
    by_hash: FxHashMap<u64, Vec<u32>>,
    slots: Vec<&'static (Value, Tag)>,
}

fn payload_hash(value: &Value, tag: Tag) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    tag.hash(&mut h);
    h.finish()
}

fn payload_bytes(value: &Value) -> usize {
    let heap = match value {
        Value::Str(s) => s.len(),
        _ => 0,
    };
    std::mem::size_of::<(Value, Tag)>() + std::mem::size_of::<&'static (Value, Tag)>() + heap
}

/// Label index → that label's arena. Append-only; arenas are leaked so a
/// resolved table reference outlives the directory read lock.
fn directory() -> &'static RwLock<Vec<&'static LabelArena>> {
    static DIR: OnceLock<RwLock<Vec<&'static LabelArena>>> = OnceLock::new();
    DIR.get_or_init(|| RwLock::new(Vec::new()))
}

fn leak_arena() -> &'static LabelArena {
    Box::leak(Box::new(LabelArena {
        inner: RwLock::new(LabelInner::default()),
        hits: AtomicU64::new(0),
        bytes: AtomicUsize::new(0),
    }))
}

fn table_for(label: Symbol) -> &'static LabelArena {
    let idx = label.index() as usize;
    {
        let dir = directory().read();
        if let Some(t) = dir.get(idx) {
            return t;
        }
    }
    let mut dir = directory().write();
    while dir.len() <= idx {
        // Dense fill: labels interned before their first element still get
        // (empty) arenas, keeping `directory[label.index()]` total.
        dir.push(leak_arena());
    }
    dir[idx]
}

impl ElemId {
    /// Intern an element's payload, returning its id. Idempotent; a
    /// repeat intern is a hash-cons hit (one hash + one read lock).
    #[inline]
    pub fn intern(e: &Element) -> ElemId {
        Self::intern_parts(e.label, &e.value, e.tag)
    }

    /// Intern from borrowed parts: the value is cloned only the first
    /// time this `(label, value, tag)` payload is ever seen.
    pub fn intern_parts(label: Symbol, value: &Value, tag: Tag) -> ElemId {
        let t = table_for(label);
        let h = payload_hash(value, tag);
        {
            let g = t.inner.read();
            if let Some(slot) = find_slot(&g, h, value, tag) {
                t.hits.fetch_add(1, Ordering::Relaxed);
                return ElemId::from_parts(label.index(), slot);
            }
        }
        let mut g = t.inner.write();
        if let Some(slot) = find_slot(&g, h, value, tag) {
            t.hits.fetch_add(1, Ordering::Relaxed);
            return ElemId::from_parts(label.index(), slot);
        }
        let slot = u32::try_from(g.slots.len()).expect("element arena overflow");
        let leaked: &'static (Value, Tag) =
            std::boxed::Box::leak(std::boxed::Box::new((value.clone(), tag)));
        g.slots.push(leaked);
        g.by_hash.entry(h).or_default().push(slot);
        t.bytes.fetch_add(payload_bytes(value), Ordering::Relaxed);
        ElemId::from_parts(label.index(), slot)
    }

    /// The id of an already-interned payload, without interning. `None`
    /// means the payload has never been in any bag (so no token, delta,
    /// or count can reference it) — lookups of absent elements do not
    /// grow the arena.
    #[inline]
    pub fn lookup(e: &Element) -> Option<ElemId> {
        Self::lookup_parts(e.label, &e.value, e.tag)
    }

    /// Non-interning lookup from borrowed parts.
    pub fn lookup_parts(label: Symbol, value: &Value, tag: Tag) -> Option<ElemId> {
        let idx = label.index() as usize;
        let t = {
            let dir = directory().read();
            *dir.get(idx)?
        };
        let h = payload_hash(value, tag);
        let g = t.inner.read();
        find_slot(&g, h, value, tag).map(|slot| ElemId::from_parts(label.index(), slot))
    }

    /// Re-pack an id from a label index and payload slot. Only values
    /// previously unpacked via [`ElemId::label_index`]/[`ElemId::slot`]
    /// are meaningful (the bag stores bare slots and re-packs on
    /// iteration).
    #[inline]
    pub(crate) fn from_parts(label_index: u32, slot: u32) -> ElemId {
        ElemId(((label_index as u64) << 32) | slot as u64)
    }

    /// The raw packed id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The label's interner index — a shift, no arena access.
    #[inline]
    pub fn label_index(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The payload slot within the label's arena.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The label symbol.
    #[inline]
    pub fn label(self) -> Symbol {
        Symbol::from_index(self.label_index())
    }

    /// Resolve to the interned payload. The reference is `'static`: it
    /// stays valid with no lock held, across threads, for the process
    /// lifetime.
    pub fn resolve(self) -> &'static (Value, Tag) {
        let t = {
            let dir = directory().read();
            dir[self.label_index() as usize]
        };
        let g = t.inner.read();
        g.slots[self.slot() as usize]
    }

    /// The payload tag.
    #[inline]
    pub fn tag(self) -> Tag {
        self.resolve().1
    }

    /// Materialise an owned [`Element`] (value clone is a refcount bump
    /// for strings, a copy for scalars).
    pub fn to_element(self) -> Element {
        let (value, tag) = self.resolve();
        Element {
            value: value.clone(),
            label: self.label(),
            tag: *tag,
        }
    }

    /// The id of the same payload at the successor tag (`inctag`
    /// semantics) — one resolve, one intern, no owned intermediate.
    pub fn with_next_tag(self) -> ElemId {
        let (value, tag) = self.resolve();
        ElemId::intern_parts(self.label(), value, tag.next())
    }

    /// The id of the same payload on another label.
    pub fn relabelled(self, label: Symbol) -> ElemId {
        let (value, tag) = self.resolve();
        ElemId::intern_parts(label, value, *tag)
    }
}

fn find_slot(g: &LabelInner, h: u64, value: &Value, tag: Tag) -> Option<u32> {
    g.by_hash.get(&h)?.iter().copied().find(|&s| {
        let p = g.slots[s as usize];
        p.1 == tag && p.0 == *value
    })
}

impl fmt::Debug for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ElemId({}#{})", self.label(), self.slot())
    }
}

/// Aggregate arena statistics, for metrics export and the inspector's
/// census line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Labels with at least one interned payload slot.
    pub labels: usize,
    /// Distinct payload slots across all labels.
    pub slots: usize,
    /// Estimated retained bytes (slot tables + payloads + string heap).
    pub bytes: usize,
    /// Lifetime hash-cons hits (interns that found an existing slot).
    pub hits: u64,
}

/// Snapshot the process-global arena statistics.
pub fn arena_stats() -> ArenaStats {
    let dir = directory().read();
    let mut out = ArenaStats::default();
    for t in dir.iter() {
        let slots = t.inner.read().slots.len();
        if slots > 0 {
            out.labels += 1;
        }
        out.slots += slots;
        out.bytes += t.bytes.load(Ordering::Relaxed);
        out.hits += t.hits.load(Ordering::Relaxed);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: i64, l: &str, t: u64) -> Element {
        Element::new(v, l, t)
    }

    #[test]
    fn intern_is_idempotent_and_hash_consed() {
        let a = ElemId::intern(&e(1, "arena-A", 0));
        let b = ElemId::intern(&e(1, "arena-A", 0));
        assert_eq!(a, b);
        let c = ElemId::intern(&e(2, "arena-A", 0));
        assert_ne!(a, c);
        let d = ElemId::intern(&e(1, "arena-A", 1));
        assert_ne!(a, d);
    }

    #[test]
    fn label_packed_in_id() {
        let id = ElemId::intern(&e(7, "arena-L", 3));
        assert_eq!(id.label(), Symbol::intern("arena-L"));
        assert_eq!(id.label_index(), Symbol::intern("arena-L").index());
        assert_eq!(id.tag(), Tag(3));
    }

    #[test]
    fn resolve_round_trips() {
        let orig = e(42, "arena-R", 9);
        let id = ElemId::intern(&orig);
        let (v, t) = id.resolve();
        assert_eq!(*v, orig.value);
        assert_eq!(*t, orig.tag);
        assert_eq!(id.to_element(), orig);
    }

    #[test]
    fn lookup_does_not_intern() {
        let probe = e(123_456, "arena-miss", 77);
        assert_eq!(ElemId::lookup(&probe), None);
        let before = arena_stats().slots;
        assert_eq!(ElemId::lookup(&probe), None);
        assert_eq!(arena_stats().slots, before);
        let id = ElemId::intern(&probe);
        assert_eq!(ElemId::lookup(&probe), Some(id));
    }

    #[test]
    fn derived_ids_share_payload_values() {
        let id = ElemId::intern(&e(5, "arena-D", 0));
        let next = id.with_next_tag();
        assert_eq!(next.label(), id.label());
        assert_eq!(next.tag(), Tag(1));
        assert_eq!(next.resolve().0, id.resolve().0);
        let other = id.relabelled(Symbol::intern("arena-D2"));
        assert_eq!(other.tag(), Tag(0));
        assert_eq!(other.resolve().0, Value::int(5));
    }

    #[test]
    fn stats_count_hits_and_slots() {
        let before = arena_stats();
        ElemId::intern(&e(1, "arena-S", 0));
        ElemId::intern(&e(1, "arena-S", 0));
        ElemId::intern(&e(2, "arena-S", 0));
        let after = arena_stats();
        assert!(after.slots >= before.slots + 2);
        assert!(after.hits > before.hits);
        assert!(after.bytes > before.bytes);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let _ = i;
                    ElemId::intern(&e(99, "arena-con", 5)).raw()
                })
            })
            .collect();
        let ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }

    fn arb_payload() -> impl proptest::Strategy<Value = Element> {
        use proptest::prelude::*;
        let value = prop_oneof![
            (-8i64..8).prop_map(Value::int),
            "[a-c]{0,3}".prop_map(Value::str),
        ];
        (value, 0usize..3, 0u64..3).prop_map(|(v, l, t)| {
            let labels = ["arena-P0", "arena-P1", "arena-P2"];
            Element::new(v, labels[l], t)
        })
    }

    proptest::proptest! {
        /// intern → resolve → re-intern is the identity, and interning is
        /// injective on payloads: equal elements always share one id and
        /// one slot (hash-consing), distinct elements never collide.
        #[test]
        fn prop_intern_resolve_round_trip(
            elems in proptest::collection::vec(arb_payload(), 1..40),
        ) {
            for e in &elems {
                let id = ElemId::intern(e);
                proptest::prop_assert_eq!(id.to_element(), e.clone());
                proptest::prop_assert_eq!(ElemId::intern(&id.to_element()), id);
                proptest::prop_assert_eq!(ElemId::lookup(e), Some(id));
            }
            for a in &elems {
                for b in &elems {
                    let same = ElemId::intern(a) == ElemId::intern(b);
                    proptest::prop_assert_eq!(same, a == b);
                }
            }
        }

        /// Re-interning a payload any number of times keeps handing back
        /// the slot the first intern allocated — multiplicity lives in the
        /// bag, never in the arena — and every re-intern counts as a hit.
        /// (Stats are process-global, so the hit delta is a lower bound:
        /// other test threads may intern concurrently.)
        #[test]
        fn prop_hash_consing_multiplicity(
            elems in proptest::collection::vec(arb_payload(), 1..40),
        ) {
            let first: Vec<ElemId> = elems.iter().map(ElemId::intern).collect();
            let before_hits = arena_stats().hits;
            for (e, &id) in elems.iter().zip(&first) {
                proptest::prop_assert_eq!(ElemId::intern(e), id);
                proptest::prop_assert_eq!(ElemId::intern(e), id);
            }
            let after_hits = arena_stats().hits;
            proptest::prop_assert!(after_hits >= before_hits + 2 * elems.len() as u64);
        }
    }

    #[test]
    fn string_values_hash_cons() {
        let a = ElemId::intern(&Element::new(Value::str("shared"), "arena-str", Tag(0)));
        let b = ElemId::intern(&Element::new(Value::str("shared"), "arena-str", Tag(0)));
        assert_eq!(a, b);
        // The resolved reference is the same allocation for both.
        assert!(std::ptr::eq(a.resolve(), b.resolve()));
    }
}
