//! A from-scratch implementation of the Fx hash function.
//!
//! The keys hashed on gammaflow's hot paths are tiny — interned `u32`
//! symbols, `u64` tags, and small `(Symbol, Tag)` pairs — for which the
//! standard library's SipHash is measurably slow (see the Rust Performance
//! Book, "Hashing"). The Fx algorithm (originally from Firefox, used
//! throughout rustc via the `rustc-hash` crate) is a simple
//! multiply-and-rotate mix that excels on short integer keys. It is
//! implemented here directly rather than pulled in as a dependency to keep
//! the offline dependency set minimal.
//!
//! Fx is *not* HashDoS-resistant; all keys hashed with it in this workspace
//! are internally generated (interner ids, node ids, tags), never attacker
//! controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplication constant (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// Streaming hasher state implementing the Fx algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

/// `BuildHasher` producing [`FxHasher`]s; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail; this mirrors the
        // reference implementation closely enough to keep the same
        // distribution quality.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline(always)]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline(always)]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a single `u64` with Fx; handy for shard selection. Equals the
/// result of a fresh [`FxHasher`] after one `write_u64`.
#[inline(always)]
pub fn hash_u64(x: u64) -> u64 {
    x.wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Fx is weak but must at least separate consecutive small ints.
        let a = hash_of(&1u64);
        let b = hash_of(&2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn tail_bytes_affect_hash() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2][..]));
        assert_ne!(hash_of(&[0u8; 3][..]), hash_of(&[0u8; 4][..]));
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // 10k sequential keys into 64 buckets should not collapse into a few.
        let mut buckets = [0u32; 64];
        for i in 0..10_000u64 {
            buckets[(hash_of(&i) % 64) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < 400, "max bucket {max} too full");
        assert!(min > 50, "min bucket {min} too empty");
    }

    #[test]
    fn hash_u64_matches_single_write() {
        let mut h = FxHasher::default();
        h.write_u64(77);
        assert_eq!(h.finish(), hash_u64(77));
    }
}
