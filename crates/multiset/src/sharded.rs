//! Concurrent sharded multiset for the parallel Gamma interpreter.
//!
//! The Γ operator lets reactions fire "freely and in parallel" over disjoint
//! sub-multisets. A shared-memory realisation needs two things:
//!
//! 1. **Atomic claims** — a worker must consume its matched tuple and insert
//!    the products without another worker consuming the same occurrences.
//!    [`ShardedBag::claim_and_replace`] locks the affected shards in index
//!    order (deadlock-free) and performs the Γ step `(M − x⃗) + A(x⃗)` as one
//!    critical section.
//! 2. **Quiescence detection** — execution ends at the paper's "global
//!    termination state": no reaction condition holds anywhere. A monotonic
//!    [`version`](ShardedBag::version) counter, bumped on every successful
//!    claim, lets workers detect "I scanned everything and nothing changed
//!    meanwhile", the classic scan-version protocol.
//!
//! Shards are `CachePadded` to avoid false sharing between worker threads
//! (Rust Atomics & Locks, ch. 7).

use crate::element::{Element, Tag};
use crate::fxhash;
use crate::indexed::ElementBag;
use crate::symbol::Symbol;
use crossbeam_utils_shim::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

// `crossbeam_utils::CachePadded` without forcing the dependency on every
// consumer of this crate: a minimal local re-implementation. 128-byte
// alignment covers the spatial-prefetcher pairing on modern x86 and the
// cache line of aarch64 big cores.
mod crossbeam_utils_shim {
    /// Pads and aligns a value to 128 bytes to defeat false sharing.
    #[repr(align(128))]
    #[derive(Debug, Default)]
    pub struct CachePadded<T>(pub T);

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.0
        }
    }
    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }
}

/// Which of `num_shards` shards (a power of two) the `(label, tag)` key
/// lives in. Exposed as a free function so consumers that partition the
/// same alpha space — the parallel Gamma engine assigns each worker a
/// slice of `(label, tag)` keys — agree with [`ShardedBag::shard_of`]
/// without holding a bag.
#[inline]
pub fn shard_index(label: Symbol, tag: Tag, num_shards: usize) -> usize {
    debug_assert!(num_shards.is_power_of_two());
    let key = ((label.index() as u64) << 32) ^ tag.0;
    (fxhash::hash_u64(key) & (num_shards as u64 - 1)) as usize
}

/// A sharded, internally synchronised multiset of [`Element`]s.
pub struct ShardedBag {
    shards: Box<[CachePadded<Mutex<ElementBag>>]>,
    version: AtomicU64,
    len: AtomicUsize,
}

impl ShardedBag {
    /// Create a bag with at least `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| CachePadded(Mutex::new(ElementBag::new())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedBag {
            shards,
            version: AtomicU64::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `(label, tag)` lives in. All occurrences of a given
    /// `(label, tag)` key are co-located, so single-bucket scans touch one
    /// lock.
    #[inline]
    pub fn shard_of(&self, label: Symbol, tag: Tag) -> usize {
        shard_index(label, tag, self.shards.len())
    }

    /// Monotonic mutation counter. Bumped after every successful
    /// [`claim_and_replace`](Self::claim_and_replace) and every insert.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Total element count. Exact when quiescent; momentarily stale while
    /// claims are in flight.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True if no elements are present (subject to the same staleness as
    /// [`len`](Self::len)).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a single element.
    pub fn insert(&self, e: Element) {
        let s = self.shard_of(e.label, e.tag);
        self.shards[s].lock().insert(e);
        self.len.fetch_add(1, Ordering::AcqRel);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Insert many elements (one version bump).
    pub fn insert_all(&self, elems: impl IntoIterator<Item = Element>) {
        let mut n = 0usize;
        for e in elems {
            let s = self.shard_of(e.label, e.tag);
            self.shards[s].lock().insert(e);
            n += 1;
        }
        if n > 0 {
            self.len.fetch_add(n, Ordering::AcqRel);
            self.version.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Atomically perform one Γ step: consume every element of `consumed`
    /// (with multiplicity) and insert every element of `produced`. Returns
    /// `false` — leaving the bag untouched — if any consumed element is
    /// unavailable, which is how optimistic matches lose races.
    pub fn claim_and_replace(&self, consumed: &[Element], produced: &[Element]) -> bool {
        // Collect the set of shards we must hold, sorted ascending so all
        // claimants acquire locks in the same global order.
        let mut shard_ids: Vec<usize> = consumed
            .iter()
            .chain(produced.iter())
            .map(|e| self.shard_of(e.label, e.tag))
            .collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();

        let mut guards: Vec<parking_lot::MutexGuard<'_, ElementBag>> =
            Vec::with_capacity(shard_ids.len());
        for &s in &shard_ids {
            guards.push(self.shards[s].lock());
        }
        let guard_pos = |s: usize| shard_ids.binary_search(&s).expect("shard locked");

        // Availability check with duplicate demand, across shards.
        {
            let mut demand: crate::FxHashMap<&Element, usize> = crate::FxHashMap::default();
            for e in consumed {
                *demand.entry(e).or_insert(0) += 1;
            }
            for (e, need) in demand {
                let g = &guards[guard_pos(self.shard_of(e.label, e.tag))];
                if g.count(e) < need {
                    return false;
                }
            }
        }

        for e in consumed {
            let g = &mut guards[guard_pos(self.shard_of(e.label, e.tag))];
            let removed = g.remove(e);
            debug_assert!(removed, "availability was just checked");
        }
        for e in produced {
            let g = &mut guards[guard_pos(self.shard_of(e.label, e.tag))];
            g.insert_ref(e);
        }
        drop(guards);

        if produced.len() >= consumed.len() {
            self.len
                .fetch_add(produced.len() - consumed.len(), Ordering::AcqRel);
        } else {
            self.len
                .fetch_sub(consumed.len() - produced.len(), Ordering::AcqRel);
        }
        self.version.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Run `f` with the shard `i` locked. The workhorse of parallel match
    /// scans: workers iterate shards (starting from different offsets) and
    /// search each local [`ElementBag`] index.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&ElementBag) -> R) -> R {
        f(&self.shards[i].lock())
    }

    /// Lock every shard in index order and return the guards. While the
    /// guards are held the bag is a consistent frozen multiset; searching
    /// through them (see the parallel engine's terminal check) avoids the
    /// O(|M|) clone that [`Self::snapshot`] pays. Lock order matches
    /// [`Self::claim_and_replace`], so holders and claimants cannot
    /// deadlock.
    pub fn lock_all(&self) -> Vec<parking_lot::MutexGuard<'_, ElementBag>> {
        self.shards.iter().map(|s| s.lock()).collect()
    }

    /// Lock every shard (in order) and produce a consistent snapshot.
    pub fn snapshot(&self) -> ElementBag {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut out = ElementBag::new();
        for g in &guards {
            for (e, c) in g.iter_counts() {
                out.insert_n(e, c);
            }
        }
        out
    }

    /// Move all contents out, leaving the bag empty.
    pub fn drain(&self) -> ElementBag {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut out = ElementBag::new();
        for g in guards.iter_mut() {
            for (e, c) in g.iter_counts() {
                out.insert_n(e, c);
            }
            g.clear();
        }
        self.len.store(0, Ordering::Release);
        self.version.fetch_add(1, Ordering::AcqRel);
        out
    }
}

impl From<ElementBag> for ShardedBag {
    fn from(bag: ElementBag) -> Self {
        let sharded = ShardedBag::new(16);
        sharded.insert_all(bag.iter());
        sharded
    }
}

// Serialised as `(num_shards, contents)`: the shard layout is a hash
// partition rebuilt on load, so only the shard count and the flattened
// multiset need to survive the process boundary. The version counter
// restarts at the insert bumps of the reload — it is a process-local
// quiescence clock, not persistent state.
impl serde::Serialize for ShardedBag {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.num_shards() as u64, self.snapshot()).serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for ShardedBag {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (shards, contents): (u64, ElementBag) = serde::Deserialize::deserialize(deserializer)?;
        let bag = ShardedBag::new(shards as usize);
        bag.insert_all(contents.iter());
        Ok(bag)
    }
}

impl std::fmt::Debug for ShardedBag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBag")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("version", &self.version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn e(v: i64, l: &str, t: u64) -> Element {
        Element::new(v, l, t)
    }

    #[test]
    fn insert_and_snapshot() {
        let bag = ShardedBag::new(4);
        bag.insert(e(1, "A", 0));
        bag.insert(e(2, "B", 1));
        assert_eq!(bag.len(), 2);
        let snap = bag.snapshot();
        assert!(snap.contains(&e(1, "A", 0)));
        assert!(snap.contains(&e(2, "B", 1)));
    }

    #[test]
    fn claim_success_and_failure() {
        let bag = ShardedBag::new(4);
        bag.insert_all([e(1, "A", 0), e(2, "B", 0)]);
        let v0 = bag.version();
        assert!(bag.claim_and_replace(&[e(1, "A", 0), e(2, "B", 0)], &[e(3, "C", 0)]));
        assert!(bag.version() > v0);
        assert_eq!(bag.len(), 1);
        // Elements are gone now.
        assert!(!bag.claim_and_replace(&[e(1, "A", 0)], &[]));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn claim_checks_duplicate_demand() {
        let bag = ShardedBag::new(4);
        bag.insert(e(7, "X", 0));
        assert!(!bag.claim_and_replace(&[e(7, "X", 0), e(7, "X", 0)], &[]));
        bag.insert(e(7, "X", 0));
        assert!(bag.claim_and_replace(&[e(7, "X", 0), e(7, "X", 0)], &[]));
        assert_eq!(bag.len(), 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedBag::new(0).num_shards(), 1);
        assert_eq!(ShardedBag::new(3).num_shards(), 4);
        assert_eq!(ShardedBag::new(16).num_shards(), 16);
    }

    #[test]
    fn same_key_same_shard() {
        let bag = ShardedBag::new(8);
        let a = bag.shard_of(Symbol::intern("L"), Tag(5));
        let b = bag.shard_of(Symbol::intern("L"), Tag(5));
        assert_eq!(a, b);
    }

    #[test]
    fn free_shard_index_agrees_with_bag() {
        let bag = ShardedBag::new(16);
        for (l, t) in [("L", 0u64), ("M", 7), ("worker", 123), ("n", 42)] {
            let label = Symbol::intern(l);
            assert_eq!(
                shard_index(label, Tag(t), bag.num_shards()),
                bag.shard_of(label, Tag(t))
            );
        }
    }

    #[test]
    fn lock_all_freezes_a_consistent_view() {
        let bag = ShardedBag::new(4);
        bag.insert_all([e(1, "A", 0), e(2, "B", 1), e(2, "B", 1)]);
        let guards = bag.lock_all();
        assert_eq!(guards.len(), bag.num_shards());
        let total: usize = guards.iter().map(|g| g.len()).sum();
        assert_eq!(total, 3);
        drop(guards);
        // Locks released: claims proceed again.
        assert!(bag.claim_and_replace(&[e(1, "A", 0)], &[]));
    }

    #[test]
    fn drain_empties() {
        let bag = ShardedBag::new(4);
        bag.insert_all([e(1, "A", 0), e(2, "A", 0), e(3, "B", 0)]);
        let contents = bag.drain();
        assert_eq!(contents.len(), 3);
        assert_eq!(bag.len(), 0);
        assert!(bag.snapshot().is_empty());
    }

    #[test]
    fn concurrent_claims_never_double_spend() {
        // N tokens, 2N workers each trying to claim one token and produce
        // one receipt; exactly N must succeed.
        let bag = Arc::new(ShardedBag::new(8));
        const N: usize = 100;
        for _ in 0..N {
            bag.insert(e(1, "token", 0));
        }
        let mut handles = Vec::new();
        for i in 0..2 * N {
            let bag = Arc::clone(&bag);
            handles.push(std::thread::spawn(move || {
                bag.claim_and_replace(&[e(1, "token", 0)], &[e(i as i64, "receipt", 0)])
            }));
        }
        let successes = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert_eq!(successes, N);
        let snap = bag.snapshot();
        assert_eq!(snap.count_label(Symbol::intern("receipt")), N);
        assert_eq!(snap.count_label(Symbol::intern("token")), 0);
    }

    #[test]
    fn serde_round_trip_preserves_contents_and_layout() {
        let bag = ShardedBag::new(8);
        bag.insert_all([e(1, "A", 0), e(1, "A", 0), e(2, "B", 7)]);
        let json = serde_json::to_string(&bag).unwrap();
        let back: ShardedBag = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_shards(), 8);
        assert_eq!(back.len(), 3);
        assert_eq!(back.snapshot(), bag.snapshot());
    }

    #[test]
    fn version_quiescence_protocol() {
        let bag = ShardedBag::new(2);
        bag.insert(e(1, "A", 0));
        let v = bag.version();
        // Failed claim must not bump the version.
        assert!(!bag.claim_and_replace(&[e(9, "missing", 0)], &[]));
        assert_eq!(bag.version(), v);
        // Successful claim must.
        assert!(bag.claim_and_replace(&[e(1, "A", 0)], &[]));
        assert!(bag.version() > v);
    }
}
