//! Tagged multiset elements — the paper's `[value, label, tag]` triples.
//!
//! §III-A1 of the paper represents every dataflow edge datum as a multiset
//! element carrying (1) the value, (2) the edge label, and (3) the dynamic
//! iteration tag maintained by `inctag` nodes. Acyclic programs (Example 1)
//! use the degenerate tag 0 and the paper prints them as pairs; we keep the
//! tag always present and let the display layer elide it.

use crate::symbol::Symbol;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dynamic-dataflow iteration tag.
///
/// Tags isolate loop iterations: the dataflow firing rule only matches
/// operands with equal tags, and the Gamma image of a graph (Algorithm 1)
/// requires equal tags across a reaction's consumed elements.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Tag(pub u64);

impl Tag {
    /// The initial tag carried by root/constant elements.
    pub const ZERO: Tag = Tag(0);

    /// The successor tag, as produced by an `inctag` node. Saturating: a
    /// program that runs 2^64 iterations has other problems.
    #[inline]
    pub fn next(self) -> Tag {
        Tag(self.0.saturating_add(1))
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Tag {
    fn from(x: u64) -> Self {
        Tag(x)
    }
}

/// A Gamma multiset element / annotated dataflow token: `[value, label, tag]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Element {
    /// The payload.
    pub value: Value,
    /// The edge label this element travels on / is matched by.
    pub label: Symbol,
    /// The iteration tag.
    pub tag: Tag,
}

impl Element {
    /// Construct an element.
    #[inline]
    pub fn new(value: impl Into<Value>, label: impl Into<Symbol>, tag: impl Into<Tag>) -> Element {
        Element {
            value: value.into(),
            label: label.into(),
            tag: tag.into(),
        }
    }

    /// Construct a tag-0 element (Example-1 style pair `[value, label]`).
    #[inline]
    pub fn pair(value: impl Into<Value>, label: impl Into<Symbol>) -> Element {
        Element::new(value, label, Tag::ZERO)
    }

    /// The `(label, tag)` matching key.
    #[inline]
    pub fn key(&self) -> (Symbol, Tag) {
        (self.label, self.tag)
    }

    /// Same element content at the successor tag (inctag semantics).
    ///
    /// Routed through the element arena: the derived payload is interned
    /// once and the returned value shares the arena's canonical
    /// allocation, so repeated derivation of the same element is a
    /// hash-cons hit and every downstream insert of the result is too.
    /// Hot paths that already hold an id use
    /// [`ElemId::with_next_tag`](crate::arena::ElemId::with_next_tag)
    /// and never materialise an `Element` at all.
    pub fn with_next_tag(&self) -> Element {
        crate::arena::ElemId::intern(self)
            .with_next_tag()
            .to_element()
    }

    /// Same element content relabelled onto another edge. Arena-routed
    /// like [`Element::with_next_tag`]; the id-level twin is
    /// [`ElemId::relabelled`](crate::arena::ElemId::relabelled).
    pub fn relabelled(&self, label: Symbol) -> Element {
        crate::arena::ElemId::intern(self)
            .relabelled(label)
            .to_element()
    }
}

impl fmt::Display for Element {
    /// Paper-style rendering: `[5,'B1',0]`, eliding a zero tag to the pair
    /// form `[5,'B1']` used in Example 1.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tag == Tag::ZERO {
            write!(f, "[{},'{}']", self.value, self.label)
        } else {
            write!(f, "[{},'{}',{}]", self.value, self.label, self.tag)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_elides_zero_tag() {
        let e = Element::pair(5, "B1");
        assert_eq!(e.to_string(), "[5,'B1']");
        let e = Element::new(5, "B1", 3u64);
        assert_eq!(e.to_string(), "[5,'B1',3]");
    }

    #[test]
    fn next_tag_increments() {
        let e = Element::new(1, "A1", 0u64);
        assert_eq!(e.with_next_tag().tag, Tag(1));
        assert_eq!(e.with_next_tag().value, e.value);
        assert_eq!(e.with_next_tag().label, e.label);
    }

    #[test]
    fn tag_next_saturates() {
        assert_eq!(Tag(u64::MAX).next(), Tag(u64::MAX));
    }

    #[test]
    fn relabel_preserves_value_and_tag() {
        let e = Element::new(9, "X", 4u64);
        let r = e.relabelled(Symbol::intern("Y"));
        assert_eq!(r.value, Value::int(9));
        assert_eq!(r.tag, Tag(4));
        assert_eq!(r.label.as_str(), "Y");
    }

    #[test]
    fn key_is_label_and_tag() {
        let e = Element::new(1, "K", 7u64);
        assert_eq!(e.key(), (Symbol::intern("K"), Tag(7)));
    }
}
