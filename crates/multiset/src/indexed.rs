//! `(label, tag)`-indexed multiset of [`Element`]s.
//!
//! Reaction matching is the performance heart of any Gamma implementation:
//! a k-ary reaction naively scans O(|M|^k) tuples. Algorithm 1's image has a
//! decisive structural property — every consumed position carries a *literal
//! label* and all positions share one tag — so indexing the multiset by
//! `(label, tag)` turns matching into bucket lookups. This mirrors how the
//! waiting–matching store of a tagged-token dataflow machine is keyed, which
//! is itself one facet of the paper's equivalence.

use crate::bag::HashBag;
use crate::element::{Element, Tag};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multiset of `[value, label, tag]` elements with a two-level
/// label → tag → values index.
///
/// Serialised as a `(element, count)` pair list; the index is rebuilt on
/// load (it is derived data, and JSON map keys must be strings).
#[derive(Clone, Default)]
pub struct ElementBag {
    index: FxHashMap<Symbol, FxHashMap<Tag, HashBag<Value>>>,
    len: usize,
}

impl Serialize for ElementBag {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter_counts())
    }
}

impl<'de> Deserialize<'de> for ElementBag {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(Element, usize)> = Vec::deserialize(deserializer)?;
        let mut bag = ElementBag::new();
        for (e, c) in pairs {
            bag.insert_n(e, c);
        }
        Ok(bag)
    }
}

impl ElementBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of elements, counting multiplicity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert one occurrence of `e`.
    pub fn insert(&mut self, e: Element) {
        self.insert_n(e, 1);
    }

    /// Insert `n` occurrences of `e`.
    pub fn insert_n(&mut self, e: Element, n: usize) {
        if n == 0 {
            return;
        }
        self.index
            .entry(e.label)
            .or_default()
            .entry(e.tag)
            .or_default()
            .insert_n(e.value, n);
        self.len += n;
    }

    /// Multiplicity of `e`.
    pub fn count(&self, e: &Element) -> usize {
        self.bucket(e.label, e.tag)
            .map_or(0, |bucket| bucket.count(&e.value))
    }

    /// True if `e` occurs at least once.
    pub fn contains(&self, e: &Element) -> bool {
        self.count(e) > 0
    }

    /// Remove one occurrence of `e`. Returns `true` if present.
    pub fn remove(&mut self, e: &Element) -> bool {
        let Some(tags) = self.index.get_mut(&e.label) else {
            return false;
        };
        let Some(bucket) = tags.get_mut(&e.tag) else {
            return false;
        };
        if !bucket.remove(&e.value) {
            return false;
        }
        if bucket.is_empty() {
            tags.remove(&e.tag);
            if tags.is_empty() {
                self.index.remove(&e.label);
            }
        }
        self.len -= 1;
        true
    }

    /// Remove one occurrence of each element in `items`, atomically: if any
    /// is unavailable (with multiplicity) nothing is removed and `false` is
    /// returned. The consume half of a Γ step.
    pub fn remove_all(&mut self, items: &[Element]) -> bool {
        // Availability check with duplicate demand.
        let mut demand: FxHashMap<&Element, usize> = FxHashMap::default();
        for e in items {
            *demand.entry(e).or_insert(0) += 1;
        }
        for (e, need) in &demand {
            if self.count(e) < *need {
                return false;
            }
        }
        for e in items {
            let removed = self.remove(e);
            debug_assert!(removed);
        }
        true
    }

    /// The value bucket for `(label, tag)`, if any elements are present.
    #[inline]
    pub fn bucket(&self, label: Symbol, tag: Tag) -> Option<&HashBag<Value>> {
        self.index.get(&label).and_then(|tags| tags.get(&tag))
    }

    /// Number of elements carrying `label` (any tag).
    pub fn count_label(&self, label: Symbol) -> usize {
        self.index
            .get(&label)
            .map_or(0, |tags| tags.values().map(|b| b.len()).sum())
    }

    /// Iterate over the distinct labels currently present.
    pub fn labels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.index.keys().copied()
    }

    /// Iterate over the distinct tags present for `label`.
    pub fn tags_for(&self, label: Symbol) -> impl Iterator<Item = Tag> + '_ {
        self.index
            .get(&label)
            .into_iter()
            .flat_map(|tags| tags.keys().copied())
    }

    /// Iterate over the distinct values in the `(label, tag)` bucket with
    /// their multiplicities, without materialising anything. This is the
    /// non-allocating accessor the reaction-match inner loop runs on: a
    /// probe walks the bucket in index order and stops at the first hit,
    /// instead of cloning the whole bucket into a `Vec` first.
    pub fn values_with_counts(
        &self,
        label: Symbol,
        tag: Tag,
    ) -> impl Iterator<Item = (&Value, usize)> + '_ {
        self.bucket(label, tag)
            .into_iter()
            .flat_map(|bucket| bucket.iter_counts())
    }

    /// Iterate over every element occurrence.
    pub fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.index.iter().flat_map(|(&label, tags)| {
            tags.iter().flat_map(move |(&tag, bucket)| {
                bucket.iter().map(move |value| Element {
                    value: value.clone(),
                    label,
                    tag,
                })
            })
        })
    }

    /// Iterate over `(element, multiplicity)` pairs.
    pub fn iter_counts(&self) -> impl Iterator<Item = (Element, usize)> + '_ {
        self.index.iter().flat_map(|(&label, tags)| {
            tags.iter().flat_map(move |(&tag, bucket)| {
                bucket.iter_counts().map(move |(value, c)| {
                    (
                        Element {
                            value: value.clone(),
                            label,
                            tag,
                        },
                        c,
                    )
                })
            })
        })
    }

    /// The sub-multiset of elements whose label passes `keep`, as a new bag.
    /// Used to project final multisets onto output labels for equivalence
    /// comparison.
    pub fn project(&self, mut keep: impl FnMut(Symbol) -> bool) -> ElementBag {
        let mut out = ElementBag::new();
        for (e, c) in self.iter_counts() {
            if keep(e.label) {
                out.insert_n(e, c);
            }
        }
        out
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.index.clear();
        self.len = 0;
    }

    /// Merge another bag into this one.
    pub fn absorb(&mut self, other: ElementBag) {
        for (e, c) in other.iter_counts() {
            self.insert_n(e, c);
        }
    }

    /// Convert to a plain [`HashBag`] of elements (loses the index).
    pub fn to_hash_bag(&self) -> HashBag<Element> {
        let mut bag = HashBag::with_capacity(self.len);
        for (e, c) in self.iter_counts() {
            bag.insert_n(e, c);
        }
        bag
    }

    /// Deterministic sorted listing, for snapshot tests and display.
    pub fn sorted_elements(&self) -> Vec<Element> {
        let mut v: Vec<Element> = self.iter().collect();
        v.sort();
        v
    }
}

impl PartialEq for ElementBag {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter_counts().all(|(e, c)| other.count(&e) == c)
    }
}
impl Eq for ElementBag {}

impl FromIterator<Element> for ElementBag {
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        let mut bag = ElementBag::new();
        for e in iter {
            bag.insert(e);
        }
        bag
    }
}

impl Extend<Element> for ElementBag {
    fn extend<I: IntoIterator<Item = Element>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl fmt::Debug for ElementBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ElementBag{}", self)
    }
}

impl fmt::Display for ElementBag {
    /// Paper-style `{[1,'A1'], [5,'B1']}` rendering, sorted for determinism.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.sorted_elements().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(v: i64, l: &str, t: u64) -> Element {
        Element::new(v, l, t)
    }

    #[test]
    fn insert_and_bucket_lookup() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "A1", 0));
        bag.insert(e(5, "B1", 0));
        bag.insert(e(5, "B1", 0));
        bag.insert(e(7, "B1", 3));
        assert_eq!(bag.len(), 4);
        let b = bag.bucket(Symbol::intern("B1"), Tag(0)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.count(&Value::int(5)), 2);
        assert_eq!(bag.count_label(Symbol::intern("B1")), 3);
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "X", 0));
        assert!(bag.remove(&e(1, "X", 0)));
        assert!(bag.is_empty());
        assert!(bag.bucket(Symbol::intern("X"), Tag(0)).is_none());
        assert_eq!(bag.labels().count(), 0);
    }

    #[test]
    fn remove_all_atomicity() {
        let mut bag: ElementBag = [e(1, "A", 0), e(2, "B", 0)].into_iter().collect();
        assert!(!bag.remove_all(&[e(1, "A", 0), e(9, "C", 0)]));
        assert_eq!(bag.len(), 2);
        assert!(bag.remove_all(&[e(1, "A", 0), e(2, "B", 0)]));
        assert!(bag.is_empty());
    }

    #[test]
    fn remove_all_duplicate_demand() {
        let mut bag: ElementBag = [e(1, "A", 0)].into_iter().collect();
        assert!(!bag.remove_all(&[e(1, "A", 0), e(1, "A", 0)]));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn tags_are_isolated() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "A", 0));
        bag.insert(e(1, "A", 1));
        assert_eq!(bag.bucket(Symbol::intern("A"), Tag(0)).unwrap().len(), 1);
        assert_eq!(bag.bucket(Symbol::intern("A"), Tag(1)).unwrap().len(), 1);
        let mut tags: Vec<Tag> = bag.tags_for(Symbol::intern("A")).collect();
        tags.sort();
        assert_eq!(tags, vec![Tag(0), Tag(1)]);
    }

    #[test]
    fn projection_filters_labels() {
        let bag: ElementBag = [e(1, "keep", 0), e(2, "drop", 0), e(3, "keep", 1)]
            .into_iter()
            .collect();
        let keep = Symbol::intern("keep");
        let p = bag.project(|l| l == keep);
        assert_eq!(p.len(), 2);
        assert!(p.contains(&e(1, "keep", 0)));
        assert!(p.contains(&e(3, "keep", 1)));
    }

    #[test]
    fn display_matches_paper_style() {
        let bag: ElementBag = [e(1, "A1", 0), e(5, "B1", 0)].into_iter().collect();
        assert_eq!(bag.to_string(), "{[1,'A1'], [5,'B1']}");
    }

    #[test]
    fn equality_is_content_based() {
        let a: ElementBag = [e(1, "A", 0), e(1, "A", 0), e(2, "B", 1)]
            .into_iter()
            .collect();
        let b: ElementBag = [e(2, "B", 1), e(1, "A", 0), e(1, "A", 0)]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        let c: ElementBag = [e(1, "A", 0), e(2, "B", 1)].into_iter().collect();
        assert_ne!(a, c);
    }

    fn arb_elem() -> impl Strategy<Value = Element> {
        (0i64..4, 0usize..3, 0u64..3).prop_map(|(v, l, t)| {
            let labels = ["L0", "L1", "L2"];
            Element::new(v, labels[l], t)
        })
    }

    proptest! {
        #[test]
        fn prop_len_is_iter_count(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            prop_assert_eq!(bag.len(), bag.iter().count());
            prop_assert_eq!(bag.len(), elems.len());
        }

        #[test]
        fn prop_roundtrip_through_hashbag(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            let hb = bag.to_hash_bag();
            let back: ElementBag = hb.iter().cloned().collect();
            prop_assert_eq!(bag, back);
        }

        #[test]
        fn prop_insert_then_remove_is_identity(
            elems in proptest::collection::vec(arb_elem(), 0..40),
            extra in arb_elem()
        ) {
            let bag: ElementBag = elems.iter().cloned().collect();
            let mut bag2 = bag.clone();
            bag2.insert(extra.clone());
            prop_assert!(bag2.remove(&extra));
            prop_assert_eq!(bag, bag2);
        }

        #[test]
        fn prop_count_label_sums_buckets(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            for label in ["L0", "L1", "L2"] {
                let sym = Symbol::intern(label);
                let expected = elems.iter().filter(|e| e.label == sym).count();
                prop_assert_eq!(bag.count_label(sym), expected);
            }
        }
    }
}
