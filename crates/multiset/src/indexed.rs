//! `(label, tag)`-indexed multiset of [`Element`]s over interned payloads.
//!
//! Reaction matching is the performance heart of any Gamma implementation:
//! a k-ary reaction naively scans O(|M|^k) tuples. Algorithm 1's image has a
//! decisive structural property — every consumed position carries a *literal
//! label* and all positions share one tag — so indexing the multiset by
//! `(label, tag)` turns matching into bucket lookups. This mirrors how the
//! waiting–matching store of a tagged-token dataflow machine is keyed, which
//! is itself one facet of the paper's equivalence.
//!
//! Storage is **columnar over the element arena**
//! ([`crate::arena`]): a bucket row is `(payload slot, count, cached
//! payload reference)`, so the bag never owns a `Value` — payloads live
//! once in the per-label arena and every insert beyond the first is a
//! counter bump found by one hash. Bucket rows keep *insertion
//! order*, which makes deterministic-mode match enumeration independent of
//! arena slot numbering (and therefore of what other sessions in the
//! process have interned).

use crate::arena::ElemId;
use crate::bag::HashBag;
use crate::element::{Element, Tag};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(label, tag)` bucket: counted payload rows in insertion order,
/// keyed by arena slot.
///
/// Iteration order is the order in which payloads last *became present*
/// (a row whose count drops to zero leaves the order entirely; a later
/// re-insert appends like a fresh payload). That makes the order a pure
/// function of the live-content operation sequence — independent of
/// arena slot numbering (so unrelated sessions sharing the process
/// arena can't perturb deterministic traces) and reproduced exactly by
/// a snapshot restore, which re-inserts rows in serialisation order
/// (= this iteration order). Dead rows are compacted away once they
/// dominate, preserving live-row order.
#[derive(Clone)]
pub struct ValueBucket {
    label: Symbol,
    tag: Tag,
    rows: Vec<BucketRow>,
    /// Arena slot → index of the slot's *live* row, if any. Unlinked the
    /// moment a count reaches zero.
    by_slot: FxHashMap<u32, u32>,
    /// Total occurrences (counting multiplicity).
    len: usize,
    /// Rows with a nonzero count.
    live_rows: usize,
    /// Changed every time compaction renumbers rows. Cursors that cache a
    /// physical row index ([`ValueBucket::iter_ids_from`]) compare epochs
    /// to detect that their index went stale and must restart from 0.
    ///
    /// Drawn from a process-global counter (at construction and at every
    /// compaction) rather than counting up from zero: empty buckets are
    /// pruned from the bag index, so a `(label, tag)` bucket can be
    /// dropped and later recreated, and a recreated bucket must never
    /// present an epoch a cursor might have cached from its predecessor.
    epoch: u64,
}

/// Allocator for [`ValueBucket::epoch`] values: every bucket instance and
/// every compaction generation gets a value no other has ever had.
fn next_bucket_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[derive(Clone)]
struct BucketRow {
    slot: u32,
    count: usize,
    /// Cached arena payload — reads are pure pointer derefs, no arena
    /// lock, no shared mutable cache line between workers.
    value: &'static Value,
}

impl ValueBucket {
    fn new(label: Symbol, tag: Tag) -> ValueBucket {
        ValueBucket {
            label,
            tag,
            rows: Vec::new(),
            by_slot: FxHashMap::default(),
            len: 0,
            live_rows: 0,
            epoch: next_bucket_epoch(),
        }
    }

    /// Total occurrences in this bucket, counting multiplicity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bucket holds no occurrences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct values present.
    #[inline]
    pub fn distinct_len(&self) -> usize {
        self.live_rows
    }

    /// Multiplicity of `value` in this bucket.
    pub fn count(&self, value: &Value) -> usize {
        ElemId::lookup_parts(self.label, value, self.tag).map_or(0, |id| self.count_slot(id.slot()))
    }

    /// Multiplicity of the payload at arena `slot`.
    #[inline]
    pub fn count_slot(&self, slot: u32) -> usize {
        self.by_slot
            .get(&slot)
            .map_or(0, |&r| self.rows[r as usize].count)
    }

    fn insert_slot(&mut self, slot: u32, value: &'static Value, n: usize) {
        match self.by_slot.get(&slot) {
            Some(&r) => self.rows[r as usize].count += n,
            None => {
                self.by_slot.insert(slot, self.rows.len() as u32);
                self.rows.push(BucketRow {
                    slot,
                    count: n,
                    value,
                });
                self.live_rows += 1;
            }
        }
        self.len += n;
    }

    /// Remove one occurrence of the payload at `slot`. Returns `true` if
    /// it was present.
    fn remove_slot(&mut self, slot: u32) -> bool {
        let Some(&r) = self.by_slot.get(&slot) else {
            return false;
        };
        let row = &mut self.rows[r as usize];
        row.count -= 1;
        self.len -= 1;
        if row.count == 0 {
            // The row leaves the enumeration order; a future re-insert
            // appends a fresh row. Snapshots carry only live rows, so
            // this keeps restored enumeration identical to an
            // uninterrupted run's.
            self.by_slot.remove(&slot);
            self.live_rows -= 1;
            self.maybe_compact();
        }
        true
    }

    /// Compact away tombstones once they dominate, preserving relative
    /// row order (so enumeration order stays a function of the op
    /// history, not of when compaction ran — it runs deterministically).
    fn maybe_compact(&mut self) {
        let dead = self.rows.len() - self.live_rows;
        if dead <= 8 || dead <= self.live_rows {
            return;
        }
        self.epoch = next_bucket_epoch();
        self.rows.retain(|row| row.count > 0);
        self.by_slot.clear();
        for (i, row) in self.rows.iter().enumerate() {
            self.by_slot.insert(row.slot, i as u32);
        }
    }

    /// Iterate distinct live values with their multiplicities, in
    /// insertion order. This is the non-allocating accessor the
    /// reaction-match inner loop runs on.
    pub fn iter_counts(&self) -> impl Iterator<Item = (&Value, usize)> + '_ {
        self.rows
            .iter()
            .filter(|row| row.count > 0)
            .map(|row| (row.value, row.count))
    }

    /// Iterate live rows carrying their [`ElemId`]s — the id-first twin
    /// of [`ValueBucket::iter_counts`] the join matcher builds tokens
    /// from (the id is free here; no hashing, no arena access).
    pub fn iter_ids(&self) -> impl Iterator<Item = (ElemId, &Value, usize)> + '_ {
        let label_index = self.label.index();
        self.rows
            .iter()
            .filter(|row| row.count > 0)
            .map(move |row| {
                (
                    ElemId::from_parts(label_index, row.slot),
                    row.value,
                    row.count,
                )
            })
    }

    /// Iterate every occurrence (values with multiplicity `k` appear `k`
    /// times).
    pub fn iter(&self) -> impl Iterator<Item = &Value> + '_ {
        self.iter_counts()
            .flat_map(|(v, c)| std::iter::repeat_n(v, c))
    }

    /// Compaction generation for this bucket. A physical row index cached
    /// at epoch `e` is valid only while `epoch() == e`; compaction bumps
    /// the epoch and invalidates every outstanding index.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterate live rows starting at physical row `start`, yielding the
    /// row index alongside the id/value/count triple.
    ///
    /// This is the resumable twin of [`ValueBucket::iter_ids`] that
    /// frontier cursors use: a scheduler that has already established
    /// that every row before `start` is dead or permanently rejected can
    /// re-enter the scan in O(1) instead of re-walking the prefix. The
    /// yielded index is only meaningful at the current [`Self::epoch`].
    pub fn iter_ids_from(
        &self,
        start: usize,
    ) -> impl Iterator<Item = (usize, ElemId, &Value, usize)> + '_ {
        let label_index = self.label.index();
        self.rows
            .iter()
            .enumerate()
            .skip(start)
            .filter(|(_, row)| row.count > 0)
            .map(move |(i, row)| {
                (
                    i,
                    ElemId::from_parts(label_index, row.slot),
                    row.value,
                    row.count,
                )
            })
    }
}

/// A multiset of `[value, label, tag]` elements with a two-level
/// label → tag → values index over arena-interned payloads.
///
/// Serialised as a `(element, count)` pair list; the index is rebuilt on
/// load (it is derived data, and JSON map keys must be strings) and
/// payloads re-intern into the local process's arena, which is what keeps
/// snapshots portable across processes.
#[derive(Clone, Default)]
pub struct ElementBag {
    index: FxHashMap<Symbol, FxHashMap<Tag, ValueBucket>>,
    len: usize,
}

impl Serialize for ElementBag {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter_counts())
    }
}

impl<'de> Deserialize<'de> for ElementBag {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(Element, usize)> = Vec::deserialize(deserializer)?;
        let mut bag = ElementBag::new();
        for (e, c) in pairs {
            bag.insert_n(e, c);
        }
        Ok(bag)
    }
}

impl ElementBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of elements, counting multiplicity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert one occurrence of `e`.
    pub fn insert(&mut self, e: Element) {
        self.insert_ref_n(&e, 1);
    }

    /// Insert `n` occurrences of `e`.
    pub fn insert_n(&mut self, e: Element, n: usize) {
        self.insert_ref_n(&e, n);
    }

    /// Insert one occurrence by reference — no `Value` clone at all when
    /// the payload is already interned (the steady state of every hot
    /// loop).
    pub fn insert_ref(&mut self, e: &Element) {
        self.insert_ref_n(e, 1);
    }

    /// Insert `n` occurrences by reference.
    pub fn insert_ref_n(&mut self, e: &Element, n: usize) {
        if n == 0 {
            return;
        }
        let id = ElemId::intern(e);
        self.insert_id_resolved(id, n);
    }

    /// Insert `n` occurrences of an already-interned payload.
    pub fn insert_id(&mut self, id: ElemId, n: usize) {
        if n == 0 {
            return;
        }
        self.insert_id_resolved(id, n);
    }

    fn insert_id_resolved(&mut self, id: ElemId, n: usize) {
        let (value, tag) = id.resolve();
        let label = id.label();
        self.index
            .entry(label)
            .or_default()
            .entry(*tag)
            .or_insert_with(|| ValueBucket::new(label, *tag))
            .insert_slot(id.slot(), value, n);
        self.len += n;
    }

    /// Multiplicity of `e`.
    pub fn count(&self, e: &Element) -> usize {
        let Some(id) = ElemId::lookup(e) else {
            return 0;
        };
        self.count_id(id, e.tag)
    }

    /// Multiplicity of an interned payload (`tag` avoids an arena
    /// resolve; it must be the id's payload tag).
    #[inline]
    pub fn count_id(&self, id: ElemId, tag: Tag) -> usize {
        self.index
            .get(&id.label())
            .and_then(|tags| tags.get(&tag))
            .map_or(0, |bucket| bucket.count_slot(id.slot()))
    }

    /// True if `e` occurs at least once.
    pub fn contains(&self, e: &Element) -> bool {
        self.count(e) > 0
    }

    /// Remove one occurrence of `e`. Returns `true` if present.
    pub fn remove(&mut self, e: &Element) -> bool {
        let Some(id) = ElemId::lookup(e) else {
            return false;
        };
        self.remove_id(id, e.tag)
    }

    /// Remove one occurrence of an interned payload. Returns `true` if
    /// present (`tag` must be the id's payload tag).
    pub fn remove_id(&mut self, id: ElemId, tag: Tag) -> bool {
        let label = id.label();
        let Some(tags) = self.index.get_mut(&label) else {
            return false;
        };
        let Some(bucket) = tags.get_mut(&tag) else {
            return false;
        };
        if !bucket.remove_slot(id.slot()) {
            return false;
        }
        if bucket.is_empty() {
            tags.remove(&tag);
            if tags.is_empty() {
                self.index.remove(&label);
            }
        }
        self.len -= 1;
        true
    }

    /// Remove one occurrence of each element in `items`, atomically: if any
    /// is unavailable (with multiplicity) nothing is removed and `false` is
    /// returned. The consume half of a Γ step.
    pub fn remove_all(&mut self, items: &[Element]) -> bool {
        // Availability check with duplicate demand, on ids (one payload
        // hash per distinct item, integer keys after).
        let mut ids: Vec<(ElemId, Tag)> = Vec::with_capacity(items.len());
        for e in items {
            let Some(id) = ElemId::lookup(e) else {
                return false;
            };
            ids.push((id, e.tag));
        }
        let mut demand: FxHashMap<ElemId, usize> = FxHashMap::default();
        for &(id, _) in &ids {
            *demand.entry(id).or_insert(0) += 1;
        }
        for (&(id, tag), _) in ids.iter().zip(items) {
            if let Some(&need) = demand.get(&id) {
                if self.count_id(id, tag) < need {
                    return false;
                }
            }
        }
        for (id, tag) in ids {
            let removed = self.remove_id(id, tag);
            debug_assert!(removed);
        }
        true
    }

    /// The value bucket for `(label, tag)`, if any elements are present.
    #[inline]
    pub fn bucket(&self, label: Symbol, tag: Tag) -> Option<&ValueBucket> {
        self.index.get(&label).and_then(|tags| tags.get(&tag))
    }

    /// Number of elements carrying `label` (any tag).
    pub fn count_label(&self, label: Symbol) -> usize {
        self.index
            .get(&label)
            .map_or(0, |tags| tags.values().map(|b| b.len()).sum())
    }

    /// Iterate over the distinct labels currently present.
    pub fn labels(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.index.keys().copied()
    }

    /// Iterate over the distinct tags present for `label`.
    pub fn tags_for(&self, label: Symbol) -> impl Iterator<Item = Tag> + '_ {
        self.index
            .get(&label)
            .into_iter()
            .flat_map(|tags| tags.keys().copied())
    }

    /// Iterate over the distinct values in the `(label, tag)` bucket with
    /// their multiplicities, without materialising anything. This is the
    /// non-allocating accessor the reaction-match inner loop runs on: a
    /// probe walks the bucket in insertion order and stops at the
    /// first hit, instead of cloning the whole bucket into a `Vec` first.
    pub fn values_with_counts(
        &self,
        label: Symbol,
        tag: Tag,
    ) -> impl Iterator<Item = (&Value, usize)> + '_ {
        self.bucket(label, tag)
            .into_iter()
            .flat_map(|bucket| bucket.iter_counts())
    }

    /// Iterate over every element occurrence.
    pub fn iter(&self) -> impl Iterator<Item = Element> + '_ {
        self.index.iter().flat_map(|(&label, tags)| {
            tags.iter().flat_map(move |(&tag, bucket)| {
                bucket.iter().map(move |value| Element {
                    value: value.clone(),
                    label,
                    tag,
                })
            })
        })
    }

    /// Iterate over `(element, multiplicity)` pairs.
    pub fn iter_counts(&self) -> impl Iterator<Item = (Element, usize)> + '_ {
        self.index.iter().flat_map(|(&label, tags)| {
            tags.iter().flat_map(move |(&tag, bucket)| {
                bucket.iter_counts().map(move |(value, c)| {
                    (
                        Element {
                            value: value.clone(),
                            label,
                            tag,
                        },
                        c,
                    )
                })
            })
        })
    }

    /// The sub-multiset of elements whose label passes `keep`, as a new bag.
    /// Used to project final multisets onto output labels for equivalence
    /// comparison.
    pub fn project(&self, mut keep: impl FnMut(Symbol) -> bool) -> ElementBag {
        let mut out = ElementBag::new();
        for (e, c) in self.iter_counts() {
            if keep(e.label) {
                out.insert_n(e, c);
            }
        }
        out
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.index.clear();
        self.len = 0;
    }

    /// Merge another bag into this one.
    pub fn absorb(&mut self, other: ElementBag) {
        for (e, c) in other.iter_counts() {
            self.insert_n(e, c);
        }
    }

    /// Convert to a plain [`HashBag`] of elements (loses the index).
    pub fn to_hash_bag(&self) -> HashBag<Element> {
        let mut bag = HashBag::with_capacity(self.len);
        for (e, c) in self.iter_counts() {
            bag.insert_n(e, c);
        }
        bag
    }

    /// Deterministic sorted listing, for snapshot tests and display.
    pub fn sorted_elements(&self) -> Vec<Element> {
        let mut v: Vec<Element> = self.iter().collect();
        v.sort();
        v
    }
}

impl PartialEq for ElementBag {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        self.iter_counts().all(|(e, c)| other.count(&e) == c)
    }
}
impl Eq for ElementBag {}

impl FromIterator<Element> for ElementBag {
    fn from_iter<I: IntoIterator<Item = Element>>(iter: I) -> Self {
        let mut bag = ElementBag::new();
        for e in iter {
            bag.insert(e);
        }
        bag
    }
}

impl Extend<Element> for ElementBag {
    fn extend<I: IntoIterator<Item = Element>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl fmt::Debug for ElementBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ElementBag{}", self)
    }
}

impl fmt::Display for ElementBag {
    /// Paper-style `{[1,'A1'], [5,'B1']}` rendering, sorted for determinism.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.sorted_elements().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn e(v: i64, l: &str, t: u64) -> Element {
        Element::new(v, l, t)
    }

    #[test]
    fn insert_and_bucket_lookup() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "A1", 0));
        bag.insert(e(5, "B1", 0));
        bag.insert(e(5, "B1", 0));
        bag.insert(e(7, "B1", 3));
        assert_eq!(bag.len(), 4);
        let b = bag.bucket(Symbol::intern("B1"), Tag(0)).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.count(&Value::int(5)), 2);
        assert_eq!(bag.count_label(Symbol::intern("B1")), 3);
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "X", 0));
        assert!(bag.remove(&e(1, "X", 0)));
        assert!(bag.is_empty());
        assert!(bag.bucket(Symbol::intern("X"), Tag(0)).is_none());
        assert_eq!(bag.labels().count(), 0);
    }

    #[test]
    fn remove_all_atomicity() {
        let mut bag: ElementBag = [e(1, "A", 0), e(2, "B", 0)].into_iter().collect();
        assert!(!bag.remove_all(&[e(1, "A", 0), e(9, "C", 0)]));
        assert_eq!(bag.len(), 2);
        assert!(bag.remove_all(&[e(1, "A", 0), e(2, "B", 0)]));
        assert!(bag.is_empty());
    }

    #[test]
    fn remove_all_duplicate_demand() {
        let mut bag: ElementBag = [e(1, "A", 0)].into_iter().collect();
        assert!(!bag.remove_all(&[e(1, "A", 0), e(1, "A", 0)]));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn remove_all_of_never_interned_element_is_clean() {
        let mut bag: ElementBag = [e(1, "A", 0)].into_iter().collect();
        // An element nobody ever interned: lookup misses, nothing removed,
        // and the failed probe must not grow the arena.
        let absent = e(987_654_321, "never-interned-indexed", 3);
        assert!(!bag.remove_all(&[e(1, "A", 0), absent.clone()]));
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.count(&absent), 0);
        assert!(!bag.remove(&absent));
    }

    #[test]
    fn tags_are_isolated() {
        let mut bag = ElementBag::new();
        bag.insert(e(1, "A", 0));
        bag.insert(e(1, "A", 1));
        assert_eq!(bag.bucket(Symbol::intern("A"), Tag(0)).unwrap().len(), 1);
        assert_eq!(bag.bucket(Symbol::intern("A"), Tag(1)).unwrap().len(), 1);
        let mut tags: Vec<Tag> = bag.tags_for(Symbol::intern("A")).collect();
        tags.sort();
        assert_eq!(tags, vec![Tag(0), Tag(1)]);
    }

    #[test]
    fn projection_filters_labels() {
        let bag: ElementBag = [e(1, "keep", 0), e(2, "drop", 0), e(3, "keep", 1)]
            .into_iter()
            .collect();
        let keep = Symbol::intern("keep");
        let p = bag.project(|l| l == keep);
        assert_eq!(p.len(), 2);
        assert!(p.contains(&e(1, "keep", 0)));
        assert!(p.contains(&e(3, "keep", 1)));
    }

    #[test]
    fn display_matches_paper_style() {
        let bag: ElementBag = [e(1, "A1", 0), e(5, "B1", 0)].into_iter().collect();
        assert_eq!(bag.to_string(), "{[1,'A1'], [5,'B1']}");
    }

    #[test]
    fn equality_is_content_based() {
        let a: ElementBag = [e(1, "A", 0), e(1, "A", 0), e(2, "B", 1)]
            .into_iter()
            .collect();
        let b: ElementBag = [e(2, "B", 1), e(1, "A", 0), e(1, "A", 0)]
            .into_iter()
            .collect();
        assert_eq!(a, b);
        let c: ElementBag = [e(1, "A", 0), e(2, "B", 1)].into_iter().collect();
        assert_ne!(a, c);
    }

    fn bucket_order(bag: &ElementBag, label: &str, tag: u64) -> Vec<i64> {
        bag.values_with_counts(Symbol::intern(label), Tag(tag))
            .map(|(v, _)| match v {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn bucket_iteration_is_insertion_ordered() {
        let mut bag = ElementBag::new();
        for v in [5, 3, 9, 3, 1] {
            bag.insert(e(v, "ord", 0));
        }
        assert_eq!(bucket_order(&bag, "ord", 0), vec![5, 3, 9, 1]);
        // A payload whose count reaches zero leaves the order; a later
        // re-insert appends like a fresh payload.
        assert!(bag.remove(&e(3, "ord", 0)));
        assert!(bag.remove(&e(3, "ord", 0)));
        assert_eq!(bucket_order(&bag, "ord", 0), vec![5, 9, 1]);
        bag.insert(e(3, "ord", 0));
        assert_eq!(bucket_order(&bag, "ord", 0), vec![5, 9, 1, 3]);
    }

    #[test]
    fn rebuild_from_rows_preserves_enumeration_order() {
        // A snapshot restore re-inserts `iter_counts()` rows in order; the
        // restored bucket must enumerate identically even when the source
        // had churn (removed-then-reinserted payloads).
        let mut bag = ElementBag::new();
        for v in [4, 8, 2, 6] {
            bag.insert(e(v, "snap", 1));
        }
        assert!(bag.remove(&e(8, "snap", 1)));
        bag.insert(e(8, "snap", 1)); // now last in enumeration order
        let mut restored = ElementBag::new();
        for (elem, c) in bag.iter_counts() {
            restored.insert_n(elem, c);
        }
        assert_eq!(
            bucket_order(&restored, "snap", 1),
            bucket_order(&bag, "snap", 1)
        );
        assert_eq!(restored, bag);
    }

    #[test]
    fn iter_ids_agrees_with_iter_counts() {
        let mut bag = ElementBag::new();
        bag.insert_n(e(4, "ids", 2), 3);
        bag.insert(e(8, "ids", 2));
        let bucket = bag.bucket(Symbol::intern("ids"), Tag(2)).unwrap();
        let via_ids: Vec<(Element, usize)> = bucket
            .iter_ids()
            .map(|(id, v, c)| {
                assert_eq!(id.to_element().value, *v);
                (id.to_element(), c)
            })
            .collect();
        let via_counts: Vec<(Element, usize)> = bucket
            .iter_counts()
            .map(|(v, c)| (Element::new(v.clone(), "ids", Tag(2)), c))
            .collect();
        assert_eq!(via_ids, via_counts);
    }

    #[test]
    fn tombstone_compaction_preserves_counts() {
        let mut bag = ElementBag::new();
        // Churn one bucket hard enough to trigger compaction.
        for round in 0..6 {
            for v in 0..24 {
                bag.insert(e(v + round * 100, "churn", 0));
            }
            for v in 0..24 {
                assert!(bag.remove(&e(v + round * 100, "churn", 0)));
            }
        }
        bag.insert(e(7, "churn", 0));
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.count(&e(7, "churn", 0)), 1);
        let bucket = bag.bucket(Symbol::intern("churn"), Tag(0)).unwrap();
        assert_eq!(bucket.distinct_len(), 1);
        assert_eq!(bucket.iter_counts().count(), 1);
    }

    #[test]
    fn iter_ids_from_resumes_and_epoch_tracks_compaction() {
        let mut bag = ElementBag::new();
        for v in 0..8 {
            bag.insert(e(v, "cur", 0));
        }
        let sym = Symbol::intern("cur");
        let epoch0 = bag.bucket(sym, Tag(0)).unwrap().epoch();

        // Tombstone rows 1 and 2: a resumed scan from row 1 must skip
        // them and report physical indices, not live ordinals.
        assert!(bag.remove(&e(1, "cur", 0)));
        assert!(bag.remove(&e(2, "cur", 0)));
        let bucket = bag.bucket(sym, Tag(0)).unwrap();
        assert_eq!(bucket.epoch(), epoch0, "2 tombstones never compact");
        let resumed: Vec<(usize, i64)> = bucket
            .iter_ids_from(1)
            .map(|(i, _, v, _)| (i, v.as_int().unwrap()))
            .collect();
        assert_eq!(resumed, vec![(3, 3), (4, 4), (5, 5), (6, 6), (7, 7)]);
        // A full scan from 0 agrees with `iter_ids` row-for-row.
        let all: Vec<i64> = bucket
            .iter_ids_from(0)
            .map(|(_, _, v, _)| v.as_int().unwrap())
            .collect();
        let via_ids: Vec<i64> = bucket
            .iter_ids()
            .map(|(_, v, _)| v.as_int().unwrap())
            .collect();
        assert_eq!(all, via_ids);

        // Drive the bucket past the compaction threshold: the epoch must
        // advance so cached row indices are detectably stale.
        for v in 100..130 {
            bag.insert(e(v, "cur", 0));
        }
        for v in 100..130 {
            assert!(bag.remove(&e(v, "cur", 0)));
        }
        let bucket = bag.bucket(sym, Tag(0)).unwrap();
        assert!(bucket.epoch() > epoch0, "compaction bumps the epoch");
        let live: Vec<i64> = bucket
            .iter_ids_from(0)
            .map(|(_, _, v, _)| v.as_int().unwrap())
            .collect();
        assert_eq!(live, vec![0, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn recreated_bucket_never_reuses_an_epoch() {
        // Empty buckets are pruned from the index; a successor bucket at
        // the same (label, tag) must be distinguishable from every epoch
        // its predecessor ever had, or a cached row cursor could skip
        // fresh rows.
        let mut bag = ElementBag::new();
        let sym = Symbol::intern("reborn");
        bag.insert(e(1, "reborn", 0));
        let first = bag.bucket(sym, Tag(0)).unwrap().epoch();
        assert!(bag.remove(&e(1, "reborn", 0)));
        assert!(bag.bucket(sym, Tag(0)).is_none(), "empty buckets prune");
        bag.insert(e(2, "reborn", 0));
        let second = bag.bucket(sym, Tag(0)).unwrap().epoch();
        assert_ne!(first, second);
    }

    fn arb_elem() -> impl Strategy<Value = Element> {
        (0i64..4, 0usize..3, 0u64..3).prop_map(|(v, l, t)| {
            let labels = ["L0", "L1", "L2"];
            Element::new(v, labels[l], t)
        })
    }

    proptest! {
        #[test]
        fn prop_len_is_iter_count(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            prop_assert_eq!(bag.len(), bag.iter().count());
            prop_assert_eq!(bag.len(), elems.len());
        }

        #[test]
        fn prop_roundtrip_through_hashbag(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            let hb = bag.to_hash_bag();
            let back: ElementBag = hb.iter().cloned().collect();
            prop_assert_eq!(bag, back);
        }

        #[test]
        fn prop_insert_then_remove_is_identity(
            elems in proptest::collection::vec(arb_elem(), 0..40),
            extra in arb_elem()
        ) {
            let bag: ElementBag = elems.iter().cloned().collect();
            let mut bag2 = bag.clone();
            bag2.insert(extra.clone());
            prop_assert!(bag2.remove(&extra));
            prop_assert_eq!(bag, bag2);
        }

        #[test]
        fn prop_count_label_sums_buckets(elems in proptest::collection::vec(arb_elem(), 0..40)) {
            let bag: ElementBag = elems.iter().cloned().collect();
            for label in ["L0", "L1", "L2"] {
                let sym = Symbol::intern(label);
                let expected = elems.iter().filter(|e| e.label == sym).count();
                prop_assert_eq!(bag.count_label(sym), expected);
            }
        }
    }
}
