//! Multiset substrate for the gammaflow workspace.
//!
//! The Gamma model (Banâtre & Le Métayer, 1986) operates on a single shared
//! *multiset* whose elements are consumed and produced by reactions; the
//! dynamic dataflow model moves *tagged tokens* along graph edges. The paper
//! reproduced by this workspace shows the two are inter-convertible when
//! multiset elements are triples `[value, label, tag]` — exactly the shape of
//! a dataflow token annotated with the edge it travels on.
//!
//! This crate provides the shared substrate both execution models are built
//! on:
//!
//! * [`Value`] — the scalar value domain (integers, booleans, floats,
//!   strings) with total arithmetic/comparison semantics shared by both
//!   interpreters, so differential testing compares like with like.
//! * [`Symbol`] — interned edge/element labels (`'A1'`, `'B2'`, …).
//! * [`Element`] and [`Tag`] — the `[value, label, tag]` triples of the
//!   paper's §III-A1.
//! * [`HashBag`] — a generic counted multiset with full multiset algebra.
//! * [`ElementBag`] — a `(label, tag)`-indexed multiset of [`Element`]s; the
//!   index is what makes Gamma reaction matching tractable.
//! * [`ShardedBag`] — a concurrent, sharded multiset used by the parallel
//!   Gamma interpreter, supporting atomic multi-element claims.
//!
//! Hashing throughout uses a from-scratch implementation of the Fx hash
//! algorithm ([`fxhash`]) because label/tag keys are tiny and hot, following
//! the Rust Performance Book's guidance on alternative hashers.
//!
//! # Example
//!
//! The multiset both models share: `[value, label, tag]` elements counted
//! with multiplicity and indexed by `(label, tag)` — the shape of a
//! dataflow token filed under the edge it travels on:
//!
//! ```
//! use gammaflow_multiset::{Element, ElementBag, Symbol, Tag};
//!
//! let mut bag = ElementBag::new();
//! bag.insert(Element::new(1, "A1", 0u64)); // token on edge A1, iteration 0
//! bag.insert(Element::new(5, "B1", 0u64));
//! bag.insert_n(Element::new(5, "B1", 0u64), 2); // multiplicity 3 total
//!
//! assert_eq!(bag.len(), 4);
//! assert_eq!(bag.count(&Element::new(5, "B1", 0u64)), 3);
//! // The (label, tag) index answers "which operands wait on edge B1?".
//! assert_eq!(bag.count_label(Symbol::intern("B1")), 3);
//! assert!(bag.tags_for(Symbol::intern("A1")).any(|t| t == Tag(0)));
//! assert!(bag.remove(&Element::new(1, "A1", 0u64)));
//! assert!(!bag.contains(&Element::new(1, "A1", 0u64)));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod bag;
pub mod element;
pub mod fxhash;
pub mod indexed;
pub mod sharded;
pub mod symbol;
pub mod value;

pub use arena::{arena_stats, ArenaStats, ElemId};
pub use bag::HashBag;
pub use element::{Element, Tag};
pub use indexed::{ElementBag, ValueBucket};
pub use sharded::{shard_index, ShardedBag};
pub use symbol::Symbol;
pub use value::{Value, ValueError};

/// Convenience alias: a `HashMap` keyed with the crate's fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, fxhash::FxBuildHasher>;
/// Convenience alias: a `HashSet` keyed with the crate's fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, fxhash::FxBuildHasher>;
