//! A generic counted multiset (bag).
//!
//! `HashBag<T>` stores each distinct item once with a multiplicity counter,
//! which makes multiset algebra (union `+`, difference `−`, inclusion `⊆`)
//! cheap even when elements repeat heavily — as they do in Gamma programs
//! like the primes sieve where thousands of identical `[1,'candidate']`
//! elements coexist.
//!
//! The Γ-operator step `(M − {x₁…xₙ}) + A(x₁…xₙ)` from the paper's Eq. (1)
//! is exactly [`HashBag::remove_all`] followed by [`HashBag::extend`].

use crate::fxhash::FxBuildHasher;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A hash-based counted multiset.
///
/// Serialised as a `(item, count)` pair list: formats like JSON require
/// string map keys, and bag items are arbitrary values.
#[derive(Clone)]
pub struct HashBag<T: Eq + Hash> {
    counts: HashMap<T, usize, FxBuildHasher>,
    len: usize,
}

impl<T: Eq + Hash + Serialize> Serialize for HashBag<T> {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.counts.iter().map(|(t, c)| (t, *c)))
    }
}

impl<'de, T: Eq + Hash + Deserialize<'de>> Deserialize<'de> for HashBag<T> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(T, usize)> = Vec::deserialize(deserializer)?;
        let mut bag = HashBag::with_capacity(pairs.len());
        for (t, c) in pairs {
            bag.insert_n(t, c);
        }
        Ok(bag)
    }
}

impl<T: Eq + Hash> Default for HashBag<T> {
    fn default() -> Self {
        HashBag {
            counts: HashMap::default(),
            len: 0,
        }
    }
}

impl<T: Eq + Hash> HashBag<T> {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bag with room for `n` distinct items.
    pub fn with_capacity(n: usize) -> Self {
        HashBag {
            counts: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
            len: 0,
        }
    }

    /// Total number of elements, counting multiplicity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of *distinct* elements.
    #[inline]
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// True if the bag holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Multiplicity of `item` (0 if absent).
    #[inline]
    pub fn count(&self, item: &T) -> usize {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// True if `item` occurs at least once.
    #[inline]
    pub fn contains(&self, item: &T) -> bool {
        self.counts.contains_key(item)
    }

    /// Insert one occurrence of `item`.
    pub fn insert(&mut self, item: T) {
        self.insert_n(item, 1);
    }

    /// Insert `n` occurrences of `item`.
    pub fn insert_n(&mut self, item: T, n: usize) {
        if n == 0 {
            return;
        }
        *self.counts.entry(item).or_insert(0) += n;
        self.len += n;
    }

    /// Remove one occurrence of `item`. Returns `true` if it was present.
    pub fn remove(&mut self, item: &T) -> bool {
        self.remove_n(item, 1) == 1
    }

    /// Remove up to `n` occurrences of `item`, returning how many were
    /// actually removed.
    pub fn remove_n(&mut self, item: &T, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        match self.counts.get_mut(item) {
            None => 0,
            Some(c) => {
                let removed = n.min(*c);
                *c -= removed;
                if *c == 0 {
                    self.counts.remove(item);
                }
                self.len -= removed;
                removed
            }
        }
    }

    /// Remove one occurrence of *each* item in `items`, atomically: either
    /// all are present (with multiplicity — removing `[x, x]` needs
    /// `count(x) >= 2`) and get removed, or the bag is unchanged and `false`
    /// is returned. This is the consume half of the Γ-operator step.
    pub fn remove_all<'a>(&mut self, items: impl IntoIterator<Item = &'a T> + Clone) -> bool
    where
        T: 'a,
    {
        // First pass: count demand per item and check availability.
        let mut demand: HashMap<&T, usize, FxBuildHasher> = HashMap::default();
        for item in items.clone() {
            *demand.entry(item).or_insert(0) += 1;
        }
        for (item, need) in &demand {
            if self.count(item) < *need {
                return false;
            }
        }
        for (item, need) in demand {
            self.remove_n(item, need);
        }
        true
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.len = 0;
    }

    /// Iterate over `(item, multiplicity)` pairs.
    pub fn iter_counts(&self) -> impl Iterator<Item = (&T, usize)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Iterate over every occurrence (items with multiplicity `k` appear
    /// `k` times).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.counts
            .iter()
            .flat_map(|(t, &c)| std::iter::repeat_n(t, c))
    }

    /// Multiset union: multiplicities add.
    pub fn union(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = self.clone();
        for (item, c) in other.iter_counts() {
            out.insert_n(item.clone(), c);
        }
        out
    }

    /// Multiset difference: multiplicities subtract, saturating at zero.
    pub fn difference(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let mut out = Self::with_capacity(self.distinct_len());
        for (item, c) in self.iter_counts() {
            let rem = c.saturating_sub(other.count(item));
            if rem > 0 {
                out.insert_n(item.clone(), rem);
            }
        }
        out
    }

    /// Multiset intersection: pointwise minimum of multiplicities.
    pub fn intersection(&self, other: &Self) -> Self
    where
        T: Clone,
    {
        let (small, big) = if self.distinct_len() <= other.distinct_len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Self::with_capacity(small.distinct_len());
        for (item, c) in small.iter_counts() {
            let m = c.min(big.count(item));
            if m > 0 {
                out.insert_n(item.clone(), m);
            }
        }
        out
    }

    /// Multiset inclusion: every multiplicity in `self` is ≤ the one in
    /// `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.len <= other.len && self.iter_counts().all(|(item, c)| c <= other.count(item))
    }

    /// Retain only occurrences whose item satisfies the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let mut removed = 0;
        self.counts.retain(|item, c| {
            if keep(item) {
                true
            } else {
                removed += *c;
                false
            }
        });
        self.len -= removed;
    }
}

impl<T: Eq + Hash> PartialEq for HashBag<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.counts == other.counts
    }
}
impl<T: Eq + Hash> Eq for HashBag<T> {}

impl<T: Eq + Hash> FromIterator<T> for HashBag<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut bag = HashBag::new();
        bag.extend(iter);
        bag
    }
}

impl<T: Eq + Hash> Extend<T> for HashBag<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.insert(item);
        }
    }
}

impl<T: Eq + Hash + fmt::Debug> fmt::Debug for HashBag<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.counts.iter()).finish()
    }
}

impl<T: Eq + Hash + fmt::Display + Ord> fmt::Display for HashBag<T> {
    /// Deterministic `{a, a, b}` rendering (sorted), for snapshots and
    /// error messages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        write!(f, "{{")?;
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut bag = HashBag::new();
        bag.insert("a");
        bag.insert("a");
        bag.insert("b");
        assert_eq!(bag.len(), 3);
        assert_eq!(bag.distinct_len(), 2);
        assert_eq!(bag.count(&"a"), 2);
        assert!(bag.remove(&"a"));
        assert_eq!(bag.count(&"a"), 1);
        assert!(bag.remove(&"a"));
        assert!(!bag.remove(&"a"));
        assert_eq!(bag.len(), 1);
    }

    #[test]
    fn remove_all_is_atomic() {
        let mut bag: HashBag<i32> = [1, 1, 2].into_iter().collect();
        // Needs 1 three times but only two are present: must not change bag.
        assert!(!bag.remove_all(&[1, 1, 1]));
        assert_eq!(bag.len(), 3);
        assert!(bag.remove_all(&[1, 2]));
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.count(&1), 1);
    }

    #[test]
    fn remove_all_respects_duplicate_demand() {
        let mut bag: HashBag<i32> = [5, 5].into_iter().collect();
        assert!(bag.remove_all(&[5, 5]));
        assert!(bag.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a: HashBag<i32> = [1, 1, 2].into_iter().collect();
        let b: HashBag<i32> = [1, 2, 3].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(u.count(&1), 3);
        assert_eq!(u.len(), 6);
        let d = a.difference(&b);
        assert_eq!(d.count(&1), 1);
        assert_eq!(d.len(), 1);
        let i = a.intersection(&b);
        assert_eq!(i.count(&1), 1);
        assert_eq!(i.count(&2), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn subset() {
        let a: HashBag<i32> = [1, 2].into_iter().collect();
        let b: HashBag<i32> = [1, 1, 2, 3].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let twice: HashBag<i32> = [1, 1].into_iter().collect();
        assert!(twice.is_subset(&b));
        let thrice: HashBag<i32> = [1, 1, 1].into_iter().collect();
        assert!(!thrice.is_subset(&b));
    }

    #[test]
    fn retain_updates_len() {
        let mut bag: HashBag<i32> = [1, 1, 2, 3, 3, 3].into_iter().collect();
        bag.retain(|x| x % 2 == 1);
        assert_eq!(bag.len(), 5);
        assert!(!bag.contains(&2));
    }

    #[test]
    fn display_is_sorted() {
        let bag: HashBag<i32> = [3, 1, 2, 1].into_iter().collect();
        assert_eq!(bag.to_string(), "{1, 1, 2, 3}");
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a: HashBag<i32> = [1, 2, 2, 3].into_iter().collect();
        let b: HashBag<i32> = [3, 2, 1, 2].into_iter().collect();
        assert_eq!(a, b);
    }

    fn arb_bag() -> impl Strategy<Value = HashBag<u8>> {
        proptest::collection::vec(0u8..16, 0..64).prop_map(|v| v.into_iter().collect())
    }

    proptest! {
        #[test]
        fn prop_union_len_adds(a in arb_bag(), b in arb_bag()) {
            prop_assert_eq!(a.union(&b).len(), a.len() + b.len());
        }

        #[test]
        fn prop_union_is_commutative(a in arb_bag(), b in arb_bag()) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn prop_difference_then_union_restores_intersection_law(
            a in arb_bag(), b in arb_bag()
        ) {
            // (a − b) + (a ∩ b) == a   — the fundamental bag identity.
            let left = a.difference(&b).union(&a.intersection(&b));
            prop_assert_eq!(left, a);
        }

        #[test]
        fn prop_subset_of_union(a in arb_bag(), b in arb_bag()) {
            prop_assert!(a.is_subset(&a.union(&b)));
            prop_assert!(b.is_subset(&a.union(&b)));
        }

        #[test]
        fn prop_intersection_is_lower_bound(a in arb_bag(), b in arb_bag()) {
            let i = a.intersection(&b);
            prop_assert!(i.is_subset(&a));
            prop_assert!(i.is_subset(&b));
        }

        #[test]
        fn prop_len_tracks_iter(a in arb_bag()) {
            prop_assert_eq!(a.len(), a.iter().count());
            prop_assert_eq!(a.distinct_len(), a.iter_counts().count());
        }

        #[test]
        fn prop_remove_all_succeeds_iff_subset(a in arb_bag(), b in arb_bag()) {
            let items: Vec<u8> = b.iter().copied().collect();
            let mut a2 = a.clone();
            let ok = a2.remove_all(items.iter());
            prop_assert_eq!(ok, b.is_subset(&a));
            if ok {
                prop_assert_eq!(a2, a.difference(&b));
            } else {
                prop_assert_eq!(a2, a);
            }
        }
    }
}
