//! The dynamic (tagged-token) dataflow execution model, per §II-A of the
//! reproduced paper.
//!
//! Programs are directed graphs: nodes are instructions, edges are data
//! dependencies, and execution is driven purely by operand availability —
//! no program counter. *Dynamic* dataflow tags every operand with an
//! iteration number so multiple loop iterations can be in flight; an
//! instruction fires only on a complete same-tag operand set. Control flow
//! is data: **steer** nodes route tokens by a boolean operand and
//! **inctag** nodes advance the iteration tag (both from TALM, the paper's
//! ref. \[5\]).
//!
//! * [`graph`] — graphs, edges with unique labels (the paper's `A1`, `B2`,
//!   …), a validating [`GraphBuilder`], graphviz export with the paper's
//!   node shapes.
//! * [`node`] — the node repertoire Algorithm 1 consumes: constants,
//!   arithmetic/comparison (with optional immediates), steer, inctag,
//!   output sinks.
//! * [`token`] — tagged tokens and the waiting–matching store.
//! * [`engine`] — sequential engine with wave-based parallelism profiles.
//! * [`engine_par`] — multi-PE engine: static node partitioning, per-PE
//!   matching stores and inboxes, token-counter quiescence detection.
//!
//! # Example
//!
//! The left half of the paper's Fig. 1 — `x + y` as a dataflow graph —
//! built, validated, and run to quiescence:
//!
//! ```
//! use gammaflow_dataflow::engine::{DfStatus, SeqEngine};
//! use gammaflow_dataflow::graph::GraphBuilder;
//! use gammaflow_dataflow::node::NodeKind;
//! use gammaflow_multiset::value::BinOp;
//! use gammaflow_multiset::Element;
//!
//! let mut b = GraphBuilder::new();
//! let x = b.constant(1);
//! let y = b.constant(5);
//! let add = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
//! let sink = b.output("m_sink");
//! b.connect_labelled(x, add, 0, "A1");
//! b.connect_labelled(y, add, 1, "B1");
//! b.connect_labelled(add, sink, 0, "m");
//! let graph = b.build().unwrap();
//!
//! let result = SeqEngine::new(&graph).run().unwrap();
//! assert_eq!(result.status, DfStatus::Quiescent);
//! assert_eq!(result.outputs.sorted_elements(), vec![Element::new(6, "m", 0u64)]);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod engine_par;
pub mod graph;
pub mod iso;
pub mod node;
pub mod token;

pub use engine::{DfFiring, DfStats, DfStatus, EngineConfig, EngineError, RunResult, SeqEngine};
pub use engine_par::{run_parallel, ParEngineConfig, ParRunResult};
pub use graph::{DataflowGraph, Edge, EdgeId, GraphBuilder, GraphError, Node, NodeId, OutPort};
pub use node::{Imm, ImmSide, NodeKind};
pub use token::{MatchingStore, ReadyFiring, Token};
