//! The dynamic (tagged-token) dataflow execution model, per §II-A of the
//! reproduced paper.
//!
//! Programs are directed graphs: nodes are instructions, edges are data
//! dependencies, and execution is driven purely by operand availability —
//! no program counter. *Dynamic* dataflow tags every operand with an
//! iteration number so multiple loop iterations can be in flight; an
//! instruction fires only on a complete same-tag operand set. Control flow
//! is data: **steer** nodes route tokens by a boolean operand and
//! **inctag** nodes advance the iteration tag (both from TALM, the paper's
//! ref. \[5\]).
//!
//! * [`graph`] — graphs, edges with unique labels (the paper's `A1`, `B2`,
//!   …), a validating [`GraphBuilder`], graphviz export with the paper's
//!   node shapes.
//! * [`node`] — the node repertoire Algorithm 1 consumes: constants,
//!   arithmetic/comparison (with optional immediates), steer, inctag,
//!   output sinks.
//! * [`token`] — tagged tokens and the waiting–matching store.
//! * [`engine`] — sequential engine with wave-based parallelism profiles.
//! * [`engine_par`] — multi-PE engine: static node partitioning, per-PE
//!   matching stores and inboxes, token-counter quiescence detection.

#![warn(missing_docs)]

pub mod engine;
pub mod engine_par;
pub mod graph;
pub mod iso;
pub mod node;
pub mod token;

pub use engine::{DfFiring, DfStats, DfStatus, EngineConfig, EngineError, RunResult, SeqEngine};
pub use engine_par::{run_parallel, ParEngineConfig, ParRunResult};
pub use graph::{DataflowGraph, Edge, EdgeId, GraphBuilder, GraphError, Node, NodeId, OutPort};
pub use node::{Imm, ImmSide, NodeKind};
pub use token::{MatchingStore, ReadyFiring, Token};
