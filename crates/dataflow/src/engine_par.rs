//! Multi-PE parallel dataflow engine.
//!
//! §II-A of the paper describes how dataflow runtimes virtualise the model
//! on multicores: "each core is a virtual Processing Element (PE) that runs
//! the dataflow firing rule", with operands forwarded directly from
//! producers to consumers. This engine is that architecture in miniature:
//!
//! * nodes are **statically partitioned** over N PEs (round-robin by node
//!   id, like the hash-based token routing of tagged-token machines);
//! * each PE owns a private waiting–matching store for its nodes and an
//!   inbox ([`crossbeam_channel`]) of in-flight tokens; locally produced
//!   tokens short-circuit through a work stack without touching the inbox;
//! * **quiescence** is detected with an in-flight token counter: a PE that
//!   observes an empty inbox and zero pending tokens knows the machine is
//!   globally idle (every state change is token-driven, and a token holds
//!   a +1 on the counter until fully processed, including its cascade).

use crate::engine::{DfStats, DfStatus, EngineError, RunResult};
use crate::graph::{DataflowGraph, EdgeId, NodeId, OutPort};
use crate::node::NodeKind;
use crate::token::MatchingStore;
use crate::token::{ReadyFiring, Token};
use gammaflow_multiset::{Element, ElementBag, Tag, Value};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Static node-to-PE partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Hash of the node id: spreads load uniformly, ignores locality
    /// (every producer→consumer hop is likely cross-PE). The tagged-token
    /// machines' default.
    #[default]
    Hash,
    /// Contiguous blocks of node ids: graphs built region-by-region (one
    /// loop or chain at a time) keep neighbours on one PE, trading load
    /// balance for communication.
    Block,
}

/// Configuration for the parallel engine.
#[derive(Debug, Clone)]
pub struct ParEngineConfig {
    /// Number of processing elements (worker threads).
    pub pes: usize,
    /// Global firing budget.
    pub max_firings: u64,
    /// Node-to-PE assignment.
    pub partition: Partition,
}

impl Default for ParEngineConfig {
    fn default() -> Self {
        ParEngineConfig {
            pes: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_firings: 10_000_000,
            partition: Partition::Hash,
        }
    }
}

impl ParEngineConfig {
    /// Config with `pes` processing elements (hash partition).
    pub fn with_pes(pes: usize) -> ParEngineConfig {
        ParEngineConfig {
            pes: pes.max(1),
            ..ParEngineConfig::default()
        }
    }

    /// Config with `pes` processing elements and block partitioning.
    pub fn with_pes_block(pes: usize) -> ParEngineConfig {
        ParEngineConfig {
            pes: pes.max(1),
            partition: Partition::Block,
            ..ParEngineConfig::default()
        }
    }
}

/// Result of a parallel run: the common [`RunResult`] plus PE-level info.
#[derive(Debug, Clone)]
pub struct ParRunResult {
    /// Outputs, status, stats (profile is empty: waves are a sequential
    /// notion).
    pub run: RunResult,
    /// Firings executed by each PE (load balance view).
    pub fired_per_pe: Vec<u64>,
    /// Tokens that crossed PE boundaries (communication volume).
    pub cross_pe_tokens: u64,
}

/// A token message: the edge it travels on plus payload and tag.
type Msg = (EdgeId, Value, Tag);

/// Run `graph` on the multi-PE engine.
pub fn run_parallel(
    graph: &DataflowGraph,
    config: &ParEngineConfig,
) -> Result<ParRunResult, EngineError> {
    let npes = config.pes.max(1);
    let node_count = graph.node_count().max(1);
    let partition = config.partition;
    // Hash partitioning routes by a multiplicative hash (high bits — the
    // low bits of Fx keep input structure); block partitioning divides the
    // id space into `npes` contiguous runs.
    let owner = move |node: NodeId| match partition {
        Partition::Hash => {
            ((gammaflow_multiset::fxhash::hash_u64(node.0 as u64) >> 32) as usize) % npes
        }
        Partition::Block => (node.index() * npes / node_count).min(npes - 1),
    };

    let (txs, rxs): (Vec<_>, Vec<_>) = (0..npes)
        .map(|_| crossbeam_channel::unbounded::<Msg>())
        .unzip();

    let pending = AtomicU64::new(0);
    let fired_global = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let budget_exhausted = AtomicBool::new(false);
    let error: Mutex<Option<EngineError>> = Mutex::new(None);

    // Seed: every root emits one token per out-edge at tag 0.
    let mut seed_count = 0u64;
    for node in graph.roots() {
        seed_count += graph.all_out_edges(node.id).count() as u64;
    }
    pending.store(seed_count, Ordering::Release);
    for node in graph.roots() {
        let NodeKind::Const(value) = &node.kind else {
            unreachable!()
        };
        for edge in graph.all_out_edges(node.id) {
            let pe = owner(edge.dst);
            txs[pe]
                .send((edge.id, value.clone(), Tag::ZERO))
                .expect("receiver alive at seed time");
        }
    }

    struct PeOutcome {
        outputs: ElementBag,
        fired_per_node: Vec<u64>,
        tokens_sent: u64,
        cross_pe: u64,
        fired: u64,
        residue: Vec<Token>,
    }

    let mut outcomes: Vec<PeOutcome> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (pe, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            let graph = &graph;
            let pending = &pending;
            let fired_global = &fired_global;
            let done = &done;
            let budget_exhausted = &budget_exhausted;
            let error = &error;
            let max_firings = config.max_firings;
            handles.push(scope.spawn(move || {
                let mut store = MatchingStore::new();
                let mut outputs = ElementBag::new();
                let mut fired_per_node = vec![0u64; graph.node_count()];
                let mut tokens_sent = 0u64;
                let mut cross_pe = 0u64;
                let mut fired = 0u64;
                // Local delivery stack: tokens for nodes this PE owns,
                // produced by this PE. Avoids channel round-trips and
                // unbounded recursion on long firing chains (loops).
                let mut local: Vec<Msg> = Vec::new();

                'main: loop {
                    let msg = if let Some(m) = local.pop() {
                        Some(m)
                    } else {
                        match rx.recv_timeout(Duration::from_micros(20)) {
                            Ok(m) => Some(m),
                            Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => break 'main,
                        }
                    };
                    let Some((edge_id, value, tag)) = msg else {
                        if done.load(Ordering::Acquire) {
                            break 'main;
                        }
                        if pending.load(Ordering::Acquire) == 0 {
                            done.store(true, Ordering::Release);
                            break 'main;
                        }
                        continue 'main;
                    };
                    if done.load(Ordering::Acquire) {
                        // Drain mode: account the token and move on.
                        pending.fetch_sub(1, Ordering::AcqRel);
                        continue 'main;
                    }

                    // Process one token fully (including its local firing).
                    let edge = graph.edge(edge_id);
                    let dst = graph.node(edge.dst);
                    debug_assert_eq!(owner(edge.dst), pe, "token routed to wrong PE");
                    if matches!(dst.kind, NodeKind::Output) {
                        outputs.insert(Element {
                            value,
                            label: edge.label,
                            tag,
                        });
                        pending.fetch_sub(1, Ordering::AcqRel);
                        continue 'main;
                    }
                    let maybe_firing = store.deliver(
                        Token {
                            node: edge.dst,
                            port: edge.dst_port,
                            tag,
                            value,
                        },
                        dst.kind.input_ports(),
                    );
                    if let Some(firing) = maybe_firing {
                        if fired_global.fetch_add(1, Ordering::AcqRel) + 1 >= max_firings {
                            budget_exhausted.store(true, Ordering::Release);
                            done.store(true, Ordering::Release);
                        }
                        fired += 1;
                        fired_per_node[firing.node.index()] += 1;
                        match execute_firing(graph, &firing) {
                            Ok(sends) => {
                                for (out_edge, v, t) in sends {
                                    tokens_sent += 1;
                                    pending.fetch_add(1, Ordering::AcqRel);
                                    let target = graph.edge(out_edge).dst;
                                    if owner(target) == pe {
                                        local.push((out_edge, v, t));
                                    } else {
                                        cross_pe += 1;
                                        // Send failures only happen during
                                        // shutdown; the pending counter is
                                        // already moot then.
                                        let _ = txs[owner(target)].send((out_edge, v, t));
                                    }
                                }
                            }
                            Err(e) => {
                                *error.lock() = Some(e);
                                done.store(true, Ordering::Release);
                            }
                        }
                    }
                    pending.fetch_sub(1, Ordering::AcqRel);
                }

                PeOutcome {
                    outputs,
                    fired_per_node,
                    tokens_sent,
                    cross_pe,
                    fired,
                    residue: store.residue(),
                }
            }));
        }
        drop(txs);
        for h in handles {
            outcomes.push(h.join().expect("PE panicked"));
        }
    });

    if let Some(e) = error.lock().take() {
        return Err(e);
    }

    let mut outputs = ElementBag::new();
    let mut stats = DfStats {
        fired_per_node: vec![0; graph.node_count()],
        tokens_sent: seed_count,
    };
    // Roots fire once each, as in the sequential engine's accounting.
    for node in graph.roots() {
        if graph.all_out_edges(node.id).next().is_some() {
            stats.fired_per_node[node.id.index()] = 1;
        }
    }
    let mut fired_per_pe = Vec::with_capacity(outcomes.len());
    let mut cross_pe_tokens = 0;
    let mut residue = Vec::new();
    for o in outcomes {
        outputs.absorb(o.outputs);
        for (i, c) in o.fired_per_node.iter().enumerate() {
            stats.fired_per_node[i] += c;
        }
        stats.tokens_sent += o.tokens_sent;
        cross_pe_tokens += o.cross_pe;
        fired_per_pe.push(o.fired);
        residue.extend(o.residue);
    }
    residue.sort_by_key(|t| (t.node, t.tag, t.port));

    let status = if budget_exhausted.load(Ordering::Acquire) {
        DfStatus::BudgetExhausted
    } else {
        DfStatus::Quiescent
    };

    Ok(ParRunResult {
        run: RunResult {
            outputs,
            status,
            stats,
            profile: Vec::new(),
            residue,
            trace: None,
        },
        fired_per_pe,
        cross_pe_tokens,
    })
}

/// Execute one firing, returning the tokens to send as
/// `(edge, value, tag)` triples.
fn execute_firing(graph: &DataflowGraph, firing: &ReadyFiring) -> Result<Vec<Msg>, EngineError> {
    let node = graph.node(firing.node);
    let mut sends = Vec::new();
    let push_all = |port: OutPort, value: Value, tag: Tag, sends: &mut Vec<Msg>| {
        for &eid in graph.out_edges(firing.node, port) {
            sends.push((eid, value.clone(), tag));
        }
    };
    match &node.kind {
        NodeKind::Arith(..) | NodeKind::Cmp(..) | NodeKind::Un(_) => {
            let value = node
                .kind
                .apply(&firing.inputs)
                .map_err(|error| EngineError::Value {
                    node: node.name.clone(),
                    error,
                })?;
            push_all(OutPort::True, value, firing.tag, &mut sends);
        }
        NodeKind::Steer => {
            let ctl = firing.inputs[1]
                .truthiness()
                .ok_or_else(|| EngineError::BadControl {
                    node: node.name.clone(),
                    value: firing.inputs[1].to_string(),
                })?;
            let port = if ctl { OutPort::True } else { OutPort::False };
            push_all(port, firing.inputs[0].clone(), firing.tag, &mut sends);
        }
        NodeKind::IncTag => {
            push_all(
                OutPort::True,
                firing.inputs[0].clone(),
                firing.tag.next(),
                &mut sends,
            );
        }
        NodeKind::Const(_) | NodeKind::Output => {
            unreachable!("const/output nodes never fire")
        }
    }
    Ok(sends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SeqEngine;
    use crate::graph::GraphBuilder;
    use crate::node::{Imm, NodeKind};
    use gammaflow_multiset::value::{BinOp, CmpOp};

    /// Wide independent fan: sum pairs of constants in parallel.
    fn wide_graph(width: usize) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        for i in 0..width {
            let a = b.constant(i as i64);
            let c = b.constant((i * 2) as i64);
            let add = b.add(NodeKind::Arith(BinOp::Add, None));
            let out = b.output(&format!("o{i}"));
            b.connect(a, add, 0);
            b.connect(c, add, 1);
            b.connect_labelled(add, out, 0, &format!("sum{i}"));
        }
        b.build().unwrap()
    }

    fn loop_graph(y: i64, z: i64, x: i64) -> DataflowGraph {
        // Same shape as the Fig. 2 test in engine.rs.
        let mut b = GraphBuilder::new();
        let yk = b.constant_named(y, "y");
        let zk = b.constant_named(z, "z");
        let xk = b.constant_named(x, "x");
        let r11 = b.add_named(NodeKind::IncTag, "R11");
        let r12 = b.add_named(NodeKind::IncTag, "R12");
        let r13 = b.add_named(NodeKind::IncTag, "R13");
        let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let r15 = b.add_named(NodeKind::Steer, "R15");
        let r16 = b.add_named(NodeKind::Steer, "R16");
        let r17 = b.add_named(NodeKind::Steer, "R17");
        let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
        let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R19");
        let out = b.output("result");
        b.connect_labelled(yk, r11, 0, "A1");
        b.connect_labelled(zk, r12, 0, "B1");
        b.connect_labelled(xk, r13, 0, "C1");
        b.connect_labelled(r11, r15, 0, "A12");
        b.connect_labelled(r12, r14, 0, "B12");
        b.connect_labelled(r12, r16, 0, "B13");
        b.connect_labelled(r13, r17, 0, "C12");
        b.connect_labelled(r14, r15, 1, "B14");
        b.connect_labelled(r14, r16, 1, "B15");
        b.connect_labelled(r14, r17, 1, "B16");
        b.connect_full(r15, OutPort::True, r11, 0, Some("A11"));
        b.connect_full(r15, OutPort::True, r19, 0, Some("A13"));
        b.connect_full(r16, OutPort::True, r18, 0, Some("B17"));
        b.connect_full(r17, OutPort::True, r19, 1, Some("C13"));
        b.connect_labelled(r18, r12, 0, "B11");
        b.connect_labelled(r19, r13, 0, "C11");
        b.connect_full(r17, OutPort::False, out, 0, Some("xout"));
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_sequential_on_wide_graph() {
        let g = wide_graph(32);
        let seq = SeqEngine::new(&g).run().unwrap();
        for pes in [1, 2, 4] {
            let par = run_parallel(&g, &ParEngineConfig::with_pes(pes)).unwrap();
            assert_eq!(par.run.status, DfStatus::Quiescent, "pes={pes}");
            assert_eq!(par.run.outputs, seq.outputs, "pes={pes}");
            assert_eq!(
                par.run.stats.fired_total(),
                seq.stats.fired_total(),
                "pes={pes}"
            );
        }
    }

    #[test]
    fn parallel_runs_loops_correctly() {
        let g = loop_graph(5, 20, 3);
        let par = run_parallel(&g, &ParEngineConfig::with_pes(4)).unwrap();
        assert_eq!(par.run.status, DfStatus::Quiescent);
        let out = par.run.outputs.sorted_elements();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::int(3 + 5 * 20));
        assert!(par.run.residue.is_empty());
    }

    #[test]
    fn load_is_distributed() {
        let g = wide_graph(64);
        let par = run_parallel(&g, &ParEngineConfig::with_pes(4)).unwrap();
        assert_eq!(par.fired_per_pe.len(), 4);
        let active = par.fired_per_pe.iter().filter(|&&f| f > 0).count();
        assert!(
            active >= 2,
            "work should spread across PEs: {:?}",
            par.fired_per_pe
        );
    }

    #[test]
    fn budget_respected_in_parallel() {
        // Infinite loop, bounded by budget.
        let mut b = GraphBuilder::new();
        let i0 = b.constant_named(0, "i0");
        let inc = b.add_named(NodeKind::IncTag, "inctag");
        let steer = b.add_named(NodeKind::Steer, "steer");
        let bump = b.add_named(NodeKind::Arith(BinOp::Add, Some(Imm::right(1))), "bump");
        let cmp = b.add_named(NodeKind::Cmp(CmpOp::Ge, Some(Imm::right(i64::MIN))), "true");
        b.connect(i0, inc, 0);
        b.connect(inc, cmp, 0);
        b.connect(inc, steer, 0);
        b.connect(cmp, steer, 1);
        b.connect_full(steer, OutPort::True, bump, 0, None);
        b.connect(bump, inc, 0);
        let g = b.build().unwrap();
        let config = ParEngineConfig {
            pes: 2,
            max_firings: 200,
            ..ParEngineConfig::default()
        };
        let par = run_parallel(&g, &config).unwrap();
        assert_eq!(par.run.status, DfStatus::BudgetExhausted);
    }

    #[test]
    fn fault_propagates_from_pe() {
        let mut b = GraphBuilder::new();
        let a = b.constant(1);
        let z = b.constant(0);
        let div = b.add_named(NodeKind::Arith(BinOp::Div, None), "div");
        let out = b.output("o");
        b.connect(a, div, 0);
        b.connect(z, div, 1);
        b.connect(div, out, 0);
        let g = b.build().unwrap();
        let err = run_parallel(&g, &ParEngineConfig::with_pes(2)).unwrap_err();
        assert!(matches!(err, EngineError::Value { .. }));
    }

    #[test]
    fn block_partition_matches_hash_partition_results() {
        let g = wide_graph(48);
        let hash = run_parallel(&g, &ParEngineConfig::with_pes(4)).unwrap();
        let block = run_parallel(&g, &ParEngineConfig::with_pes_block(4)).unwrap();
        assert_eq!(hash.run.outputs, block.run.outputs);
        assert_eq!(hash.run.stats.fired_total(), block.run.stats.fired_total());
    }

    #[test]
    fn block_partition_keeps_chains_local() {
        // A long consecutive chain under block partitioning crosses PEs at
        // most npes-1 times.
        let mut b = GraphBuilder::new();
        let mut prev = b.constant(0);
        for _ in 0..1000 {
            let n = b.add(NodeKind::Arith(BinOp::Add, Some(Imm::right(1))));
            b.connect(prev, n, 0);
            prev = n;
        }
        let out = b.output("end");
        b.connect_labelled(prev, out, 0, "end");
        let g = b.build().unwrap();
        let par = run_parallel(&g, &ParEngineConfig::with_pes_block(4)).unwrap();
        assert!(
            par.cross_pe_tokens <= 4,
            "block partition should keep the chain local, crossed {} times",
            par.cross_pe_tokens
        );
        assert_eq!(par.run.outputs.sorted_elements()[0].value, Value::int(1000));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 10k-node chain on one PE exercises the local work stack.
        let mut b = GraphBuilder::new();
        let mut prev = b.constant(0);
        for _ in 0..10_000 {
            let add = b.add(NodeKind::Arith(BinOp::Add, Some(Imm::right(1))));
            b.connect(prev, add, 0);
            prev = add;
        }
        let out = b.output("end");
        b.connect_labelled(prev, out, 0, "final");
        let g = b.build().unwrap();
        let par = run_parallel(&g, &ParEngineConfig::with_pes(1)).unwrap();
        let elems = par.run.outputs.sorted_elements();
        assert_eq!(elems[0].value, Value::int(10_000));
    }
}
