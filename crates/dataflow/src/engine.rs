//! Sequential dataflow engine.
//!
//! Executes a [`DataflowGraph`] by the dynamic-dataflow firing rule: an
//! instruction executes as soon as a complete same-tag operand set exists.
//! The engine processes firings in **waves** — every firing enabled at the
//! start of a wave executes before tokens produced during the wave are
//! matched — so the recorded wave sizes are the program's idealised
//! parallelism profile (how many instructions an unbounded machine would
//! run simultaneously), used by experiment P2.

use crate::graph::{DataflowGraph, OutPort};
use crate::node::NodeKind;
use crate::token::{MatchingStore, ReadyFiring, Token};
use gammaflow_multiset::value::ValueError;
use gammaflow_multiset::{Element, ElementBag, Tag, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Why the engine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfStatus {
    /// No tokens in flight and no firings pending: quiescent.
    Quiescent,
    /// The firing budget ran out.
    BudgetExhausted,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum number of node firings (guards divergent loops).
    pub max_firings: u64,
    /// Record a full firing trace.
    pub record_trace: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_firings: 10_000_000,
            record_trace: false,
        }
    }
}

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A value operation failed inside a node.
    Value {
        /// Node name.
        node: String,
        /// Underlying error.
        error: ValueError,
    },
    /// A steer received a non-boolean/non-integer control token.
    BadControl {
        /// Node name.
        node: String,
        /// Rendered control value.
        value: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Value { node, error } => write!(f, "node {node}: {error}"),
            EngineError::BadControl { node, value } => {
                write!(f, "node {node}: bad steer control value {value}")
            }
        }
    }
}
impl std::error::Error for EngineError {}

/// One recorded firing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfFiring {
    /// Firing sequence number.
    pub step: u64,
    /// Node name.
    pub node: String,
    /// Iteration tag.
    pub tag: Tag,
    /// Operand values (port order).
    pub inputs: Vec<Value>,
    /// Produced tokens as `(edge label, value, tag)` elements.
    pub outputs: Vec<Element>,
}

/// Counters for a dataflow run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfStats {
    /// Firings per node (indexed by `NodeId`).
    pub fired_per_node: Vec<u64>,
    /// Total tokens sent along edges.
    pub tokens_sent: u64,
}

impl DfStats {
    /// Total firings.
    pub fn fired_total(&self) -> u64 {
        self.fired_per_node.iter().sum()
    }
}

/// Result of a dataflow run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Elements collected at output sinks, labelled by their in-edge.
    pub outputs: ElementBag,
    /// Why execution stopped.
    pub status: DfStatus,
    /// Counters.
    pub stats: DfStats,
    /// Wave sizes: firings per parallel wave (the parallelism profile).
    pub profile: Vec<usize>,
    /// Tokens left stranded in the matching store at quiescence (tag
    /// mismatches / starved ports; empty for well-formed programs).
    pub residue: Vec<Token>,
    /// Firing trace if requested.
    pub trace: Option<Vec<DfFiring>>,
}

/// The sequential engine. Borrows the graph; create one per run.
pub struct SeqEngine<'g> {
    graph: &'g DataflowGraph,
    config: EngineConfig,
}

impl<'g> SeqEngine<'g> {
    /// Engine with default configuration.
    pub fn new(graph: &'g DataflowGraph) -> SeqEngine<'g> {
        SeqEngine {
            graph,
            config: EngineConfig::default(),
        }
    }

    /// Engine with explicit configuration.
    pub fn with_config(graph: &'g DataflowGraph, config: EngineConfig) -> SeqEngine<'g> {
        SeqEngine { graph, config }
    }

    /// Run to quiescence (or budget).
    pub fn run(self) -> Result<RunResult, EngineError> {
        let graph = self.graph;
        let mut store = MatchingStore::new();
        let mut outputs = ElementBag::new();
        let mut stats = DfStats {
            fired_per_node: vec![0; graph.node_count()],
            tokens_sent: 0,
        };
        let mut trace = self.config.record_trace.then(Vec::new);
        let mut profile = Vec::new();

        let mut next: VecDeque<ReadyFiring> = VecDeque::new();

        // Root nodes seed execution: one token per out-edge at tag 0.
        let mut current: VecDeque<ReadyFiring> = {
            let mut seed_ready = VecDeque::new();
            for node in graph.roots() {
                let NodeKind::Const(value) = &node.kind else {
                    unreachable!()
                };
                for edge in graph.all_out_edges(node.id) {
                    stats.fired_per_node[node.id.index()] = 1;
                    deliver(
                        graph,
                        &mut store,
                        &mut outputs,
                        &mut stats,
                        &mut seed_ready,
                        edge.id.index(),
                        value.clone(),
                        Tag::ZERO,
                    );
                }
            }
            seed_ready
        };
        if !current.is_empty() {
            profile.push(current.len());
        }

        let mut fired: u64 = 0;
        let status = 'outer: loop {
            if current.is_empty() {
                if next.is_empty() {
                    break DfStatus::Quiescent;
                }
                profile.push(next.len());
                std::mem::swap(&mut current, &mut next);
            }
            while let Some(firing) = current.pop_front() {
                if fired >= self.config.max_firings {
                    break 'outer DfStatus::BudgetExhausted;
                }
                fired += 1;
                let produced = execute(
                    graph,
                    &mut store,
                    &mut outputs,
                    &mut stats,
                    &mut next,
                    &firing,
                )?;
                stats.fired_per_node[firing.node.index()] += 1;
                if let Some(t) = trace.as_mut() {
                    t.push(DfFiring {
                        step: fired - 1,
                        node: graph.node(firing.node).name.clone(),
                        tag: firing.tag,
                        inputs: firing.inputs.clone(),
                        outputs: produced,
                    });
                }
            }
        };

        Ok(RunResult {
            outputs,
            status,
            stats,
            profile,
            residue: store.residue(),
            trace,
        })
    }
}

/// Send `value` along edge `edge_idx`; either collects it at an output sink
/// or delivers it into the matching store (queueing any resulting firing).
#[allow(clippy::too_many_arguments)]
fn deliver(
    graph: &DataflowGraph,
    store: &mut MatchingStore,
    outputs: &mut ElementBag,
    stats: &mut DfStats,
    ready: &mut VecDeque<ReadyFiring>,
    edge_idx: usize,
    value: Value,
    tag: Tag,
) {
    let edge = &graph.edges()[edge_idx];
    stats.tokens_sent += 1;
    let dst = graph.node(edge.dst);
    if matches!(dst.kind, NodeKind::Output) {
        outputs.insert(Element {
            value,
            label: edge.label,
            tag,
        });
        return;
    }
    let nports = dst.kind.input_ports();
    if let Some(firing) = store.deliver(
        Token {
            node: edge.dst,
            port: edge.dst_port,
            tag,
            value,
        },
        nports,
    ) {
        ready.push_back(firing);
    }
}

/// Execute one firing, sending produced tokens. Returns the produced
/// elements (edge label + value + tag) for tracing.
fn execute(
    graph: &DataflowGraph,
    store: &mut MatchingStore,
    outputs: &mut ElementBag,
    stats: &mut DfStats,
    ready: &mut VecDeque<ReadyFiring>,
    firing: &ReadyFiring,
) -> Result<Vec<Element>, EngineError> {
    let node = graph.node(firing.node);
    let mut produced = Vec::new();
    let send = |store: &mut MatchingStore,
                outputs: &mut ElementBag,
                stats: &mut DfStats,
                ready: &mut VecDeque<ReadyFiring>,
                port: OutPort,
                value: Value,
                tag: Tag|
     -> Vec<Element> {
        let mut out = Vec::new();
        for &eid in graph.out_edges(firing.node, port) {
            let edge = graph.edge(eid);
            out.push(Element {
                value: value.clone(),
                label: edge.label,
                tag,
            });
            deliver(
                graph,
                store,
                outputs,
                stats,
                ready,
                eid.index(),
                value.clone(),
                tag,
            );
        }
        out
    };

    match &node.kind {
        NodeKind::Arith(..) | NodeKind::Cmp(..) | NodeKind::Un(_) => {
            let value = node
                .kind
                .apply(&firing.inputs)
                .map_err(|error| EngineError::Value {
                    node: node.name.clone(),
                    error,
                })?;
            produced.extend(send(
                store,
                outputs,
                stats,
                ready,
                OutPort::True,
                value,
                firing.tag,
            ));
        }
        NodeKind::Steer => {
            let ctl = firing.inputs[1]
                .truthiness()
                .ok_or_else(|| EngineError::BadControl {
                    node: node.name.clone(),
                    value: firing.inputs[1].to_string(),
                })?;
            let port = if ctl { OutPort::True } else { OutPort::False };
            produced.extend(send(
                store,
                outputs,
                stats,
                ready,
                port,
                firing.inputs[0].clone(),
                firing.tag,
            ));
        }
        NodeKind::IncTag => {
            produced.extend(send(
                store,
                outputs,
                stats,
                ready,
                OutPort::True,
                firing.inputs[0].clone(),
                firing.tag.next(),
            ));
        }
        NodeKind::Const(_) | NodeKind::Output => {
            unreachable!("const/output nodes never enter the firing queue")
        }
    }
    Ok(produced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::node::{Imm, NodeKind};
    use gammaflow_multiset::value::{BinOp, CmpOp};
    use gammaflow_multiset::Symbol;

    fn e(v: i64, l: &str, t: u64) -> Element {
        Element::new(v, l, t)
    }

    /// Paper Fig. 1: m = (x + y) - (k * j) = (1+5) - (3*2) = 0.
    fn fig1() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        b.build().unwrap()
    }

    /// Paper Fig. 2 (semantics-corrected): for (i = z; i > 0; i--) x += y,
    /// with the final x emitted through the steer's false port so the
    /// result is observable.
    fn fig2(y0: i64, z0: i64, x0: i64) -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let y = b.constant_named(y0, "y");
        let z = b.constant_named(z0, "z");
        let x = b.constant_named(x0, "x");
        let r11 = b.add_named(NodeKind::IncTag, "R11"); // y's inctag
        let r12 = b.add_named(NodeKind::IncTag, "R12"); // i's inctag
        let r13 = b.add_named(NodeKind::IncTag, "R13"); // x's inctag
        let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
        let r15 = b.add_named(NodeKind::Steer, "R15"); // steer y
        let r16 = b.add_named(NodeKind::Steer, "R16"); // steer i
        let r17 = b.add_named(NodeKind::Steer, "R17"); // steer x
        let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
        let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R19");
        let out = b.output("result");

        b.connect_labelled(y, r11, 0, "A1");
        b.connect_labelled(z, r12, 0, "B1");
        b.connect_labelled(x, r13, 0, "C1");
        b.connect_labelled(r11, r15, 0, "A12"); // y data to its steer
        b.connect_labelled(r12, r14, 0, "B12"); // i to comparison
        b.connect_labelled(r12, r16, 0, "B13"); // i data to its steer
        b.connect_labelled(r13, r17, 0, "C12"); // x data to its steer
        b.connect_labelled(r14, r15, 1, "B14"); // control signals
        b.connect_labelled(r14, r16, 1, "B15");
        b.connect_labelled(r14, r17, 1, "B16");
        // True branches: continue looping.
        b.connect_full(r15, OutPort::True, r11, 0, Some("A11")); // y loops
        b.connect_full(r15, OutPort::True, r19, 0, Some("A13")); // y to adder
        b.connect_full(r16, OutPort::True, r18, 0, Some("B17")); // i to decrement
        b.connect_full(r17, OutPort::True, r19, 1, Some("C13")); // x to adder
        b.connect_labelled(r18, r12, 0, "B11"); // i loop-back
        b.connect_labelled(r19, r13, 0, "C11"); // x loop-back
                                                // False branch of x's steer: the loop result.
        b.connect_full(r17, OutPort::False, out, 0, Some("xout"));
        b.build().unwrap()
    }

    #[test]
    fn fig1_computes_zero() {
        let result = SeqEngine::new(&fig1()).run().unwrap();
        assert_eq!(result.status, DfStatus::Quiescent);
        assert_eq!(result.outputs.sorted_elements(), vec![e(0, "m", 0)]);
        assert!(result.residue.is_empty());
    }

    #[test]
    fn fig1_parallelism_profile() {
        // Wave 1: R1 and R2 fire together; wave 2: R3.
        let result = SeqEngine::new(&fig1()).run().unwrap();
        assert_eq!(result.profile, vec![2, 1]);
    }

    #[test]
    fn fig2_loop_computes_x_plus_y_times_z() {
        for (y, z, x) in [(5, 3, 10), (2, 0, 7), (1, 1, 0), (4, 10, -3)] {
            let g = fig2(y, z, x);
            let result = SeqEngine::new(&g).run().unwrap();
            assert_eq!(result.status, DfStatus::Quiescent, "y={y} z={z} x={x}");
            let expected = x + y * z.max(0);
            let out = result.outputs.sorted_elements();
            assert_eq!(out.len(), 1, "y={y} z={z} x={x}: {out:?}");
            assert_eq!(out[0].value, Value::int(expected), "y={y} z={z} x={x}");
            assert_eq!(out[0].label, Symbol::intern("xout"));
            // The result token exits at tag z+1 (one inctag per iteration
            // plus the final test round).
            assert_eq!(out[0].tag, Tag(z.max(0) as u64 + 1));
        }
    }

    #[test]
    fn fig2_leaves_no_residue_except_y_leftover() {
        // y keeps circulating until the steer drops it; i is consumed by
        // the decrement whose false-side is dropped. At quiescence the
        // matching store may hold only tokens that can never complete —
        // here everything drains because steers consume their pairs.
        let result = SeqEngine::new(&fig2(5, 3, 10)).run().unwrap();
        assert!(
            result.residue.is_empty(),
            "unexpected residue: {:?}",
            result.residue
        );
    }

    #[test]
    fn budget_stops_infinite_loop() {
        // while(true) i++ : steer always true.
        let mut b = GraphBuilder::new();
        let i0 = b.constant_named(0, "i0");
        let inc = b.add_named(NodeKind::IncTag, "inctag");
        let steer = b.add_named(NodeKind::Steer, "steer");
        let add = b.add_named(NodeKind::Arith(BinOp::Add, Some(Imm::right(1))), "bump");
        b.connect(i0, inc, 0);
        // Control that is always true: i >= i64::MIN.
        let cmp = b.add_named(NodeKind::Cmp(CmpOp::Ge, Some(Imm::right(i64::MIN))), "true");
        b.connect(inc, cmp, 0);
        b.connect(inc, steer, 0);
        b.connect(cmp, steer, 1);
        b.connect_full(steer, OutPort::True, add, 0, None);
        b.connect(add, inc, 0);
        let g = b.build().unwrap();
        let config = EngineConfig {
            max_firings: 500,
            ..EngineConfig::default()
        };
        let result = SeqEngine::with_config(&g, config).run().unwrap();
        assert_eq!(result.status, DfStatus::BudgetExhausted);
        assert!(result.stats.fired_total() >= 500);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut b = GraphBuilder::new();
        let a = b.constant(1);
        let z = b.constant(0);
        let div = b.add_named(NodeKind::Arith(BinOp::Div, None), "div");
        let out = b.output("o");
        b.connect(a, div, 0);
        b.connect(z, div, 1);
        b.connect(div, out, 0);
        let g = b.build().unwrap();
        let err = SeqEngine::new(&g).run().unwrap_err();
        assert!(matches!(err, EngineError::Value { .. }));
    }

    #[test]
    fn bad_steer_control_faults() {
        let mut b = GraphBuilder::new();
        let d = b.constant(1);
        let c = b.constant("not a bool");
        let steer = b.add_named(NodeKind::Steer, "steer");
        let out = b.output("o");
        b.connect(d, steer, 0);
        b.connect(c, steer, 1);
        b.connect_full(steer, OutPort::True, out, 0, None);
        let g = b.build().unwrap();
        let err = SeqEngine::new(&g).run().unwrap_err();
        assert!(matches!(err, EngineError::BadControl { .. }));
    }

    #[test]
    fn trace_records_firings_and_labels() {
        let config = EngineConfig {
            record_trace: true,
            ..EngineConfig::default()
        };
        let g = fig1();
        let result = SeqEngine::with_config(&g, config).run().unwrap();
        let trace = result.trace.unwrap();
        // R1, R2, R3 fire exactly once each (consts are seeded, not fired
        // through the queue).
        assert_eq!(trace.len(), 3);
        let r3 = trace.iter().find(|f| f.node == "R3").unwrap();
        assert_eq!(r3.outputs, vec![e(0, "m", 0)]);
    }

    #[test]
    fn steer_false_drops_when_unconnected() {
        let mut b = GraphBuilder::new();
        let d = b.constant(42);
        let c = b.constant(0); // false control
        let steer = b.add_named(NodeKind::Steer, "steer");
        let out = b.output("o");
        b.connect(d, steer, 0);
        b.connect(c, steer, 1);
        b.connect_full(steer, OutPort::True, out, 0, None);
        let g = b.build().unwrap();
        let result = SeqEngine::new(&g).run().unwrap();
        assert!(result.outputs.is_empty());
        assert!(result.residue.is_empty());
        assert_eq!(result.status, DfStatus::Quiescent);
    }

    #[test]
    fn stats_count_tokens() {
        let result = SeqEngine::new(&fig1()).run().unwrap();
        // 7 edges each carry exactly one token.
        assert_eq!(result.stats.tokens_sent, 7);
        assert_eq!(result.stats.fired_total(), 3 + 4); // R1-R3 + 4 consts
    }
}
