//! Tagged tokens and the waiting–matching store.
//!
//! In a dynamic dataflow machine, an instruction fires when *all* its input
//! operands with the *same tag* have arrived (§II-A of the paper). The
//! waiting–matching store is the structure that assembles operand sets per
//! `(instruction, tag)` — the hardware associative store of the Manchester
//! machine, here a hash map keyed exactly like the Gamma side indexes its
//! multiset by `(label, tag)`; the paper's equivalence makes that
//! correspondence precise.

use crate::graph::NodeId;
use gammaflow_multiset::{FxHashMap, Tag, Value};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A token in flight: a value heading for an input port of a node, within
/// iteration `tag`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Destination node.
    pub node: NodeId,
    /// Destination input port.
    pub port: usize,
    /// Iteration tag.
    pub tag: Tag,
    /// Payload.
    pub value: Value,
}

/// Operand assembly state for one `(node, tag)` pair. Each port holds a
/// FIFO of values: a merge port can legitimately receive several tokens
/// with the same tag, which pair up with successive firings in arrival
/// order.
#[derive(Debug, Clone, Default)]
struct OperandSlot {
    ports: Vec<VecDeque<Value>>,
}

impl OperandSlot {
    fn new(nports: usize) -> OperandSlot {
        OperandSlot {
            ports: vec![VecDeque::new(); nports],
        }
    }

    fn is_ready(&self) -> bool {
        self.ports.iter().all(|q| !q.is_empty())
    }

    fn is_empty(&self) -> bool {
        self.ports.iter().all(|q| q.is_empty())
    }

    fn take(&mut self) -> Vec<Value> {
        self.ports
            .iter_mut()
            .map(|q| q.pop_front().expect("take() requires is_ready()"))
            .collect()
    }
}

/// A ready-to-execute instruction instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadyFiring {
    /// The node to execute.
    pub node: NodeId,
    /// The iteration tag shared by all operands.
    pub tag: Tag,
    /// Operand values, in port order.
    pub inputs: Vec<Value>,
}

/// The waiting–matching store: assembles operands per `(node, tag)`.
#[derive(Debug, Default)]
pub struct MatchingStore {
    waiting: FxHashMap<(NodeId, Tag), OperandSlot>,
    /// Tokens currently parked (for occupancy stats).
    parked: usize,
}

impl MatchingStore {
    /// Empty store.
    pub fn new() -> MatchingStore {
        MatchingStore::default()
    }

    /// Deliver a token for a node with `nports` input ports. Returns a
    /// firing if this token completed an operand set.
    pub fn deliver(&mut self, token: Token, nports: usize) -> Option<ReadyFiring> {
        debug_assert!(token.port < nports);
        let slot = self
            .waiting
            .entry((token.node, token.tag))
            .or_insert_with(|| OperandSlot::new(nports));
        slot.ports[token.port].push_back(token.value);
        self.parked += 1;
        if slot.is_ready() {
            let inputs = slot.take();
            self.parked -= inputs.len();
            if slot.is_empty() {
                self.waiting.remove(&(token.node, token.tag));
            }
            Some(ReadyFiring {
                node: token.node,
                tag: token.tag,
                inputs,
            })
        } else {
            None
        }
    }

    /// Number of tokens parked waiting for partners.
    pub fn parked(&self) -> usize {
        self.parked
    }

    /// True if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.parked == 0
    }

    /// Drain the store's leftover tokens — operands that never found a
    /// complete set. A non-empty residue at quiescence usually signals a
    /// tag mismatch or a starved port; the engines report it.
    pub fn residue(&mut self) -> Vec<Token> {
        let mut out = Vec::with_capacity(self.parked);
        for ((node, tag), slot) in self.waiting.drain() {
            for (port, queue) in slot.ports.into_iter().enumerate() {
                for value in queue {
                    out.push(Token {
                        node,
                        port,
                        tag,
                        value,
                    });
                }
            }
        }
        self.parked = 0;
        out.sort_by_key(|t| (t.node, t.tag, t.port));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(node: u32, port: usize, tag: u64, value: i64) -> Token {
        Token {
            node: NodeId(node),
            port,
            tag: Tag(tag),
            value: Value::int(value),
        }
    }

    #[test]
    fn single_port_fires_immediately() {
        let mut store = MatchingStore::new();
        let firing = store.deliver(tok(0, 0, 0, 42), 1).unwrap();
        assert_eq!(firing.inputs, vec![Value::int(42)]);
        assert!(store.is_empty());
    }

    #[test]
    fn two_ports_wait_for_both() {
        let mut store = MatchingStore::new();
        assert!(store.deliver(tok(1, 0, 0, 1), 2).is_none());
        assert_eq!(store.parked(), 1);
        let firing = store.deliver(tok(1, 1, 0, 2), 2).unwrap();
        assert_eq!(firing.inputs, vec![Value::int(1), Value::int(2)]);
        assert_eq!(firing.tag, Tag(0));
        assert!(store.is_empty());
    }

    #[test]
    fn different_tags_do_not_match() {
        // The defining property of *dynamic* dataflow: operands of distinct
        // iterations never pair.
        let mut store = MatchingStore::new();
        assert!(store.deliver(tok(1, 0, 0, 1), 2).is_none());
        assert!(store.deliver(tok(1, 1, 1, 2), 2).is_none());
        assert_eq!(store.parked(), 2);
        // Completing tag 1 fires with tag-1 operands only.
        let firing = store.deliver(tok(1, 0, 1, 10), 2).unwrap();
        assert_eq!(firing.tag, Tag(1));
        assert_eq!(firing.inputs, vec![Value::int(10), Value::int(2)]);
        assert_eq!(store.parked(), 1);
    }

    #[test]
    fn different_nodes_are_independent() {
        let mut store = MatchingStore::new();
        assert!(store.deliver(tok(1, 0, 0, 1), 2).is_none());
        assert!(store.deliver(tok(2, 0, 0, 9), 2).is_none());
        assert_eq!(store.parked(), 2);
    }

    #[test]
    fn merge_port_queues_fifo() {
        // Two tokens on the same port+tag queue up and fire in order.
        let mut store = MatchingStore::new();
        assert!(store.deliver(tok(1, 0, 0, 100), 2).is_none());
        assert!(store.deliver(tok(1, 0, 0, 200), 2).is_none());
        let f1 = store.deliver(tok(1, 1, 0, 1), 2).unwrap();
        assert_eq!(f1.inputs[0], Value::int(100));
        assert_eq!(store.parked(), 1);
        let f2 = store.deliver(tok(1, 1, 0, 2), 2).unwrap();
        assert_eq!(f2.inputs[0], Value::int(200));
        assert!(store.is_empty());
    }

    #[test]
    fn residue_reports_stuck_tokens() {
        let mut store = MatchingStore::new();
        store.deliver(tok(3, 0, 7, 5), 2);
        store.deliver(tok(4, 1, 0, 6), 2);
        let mut residue = store.residue();
        residue.sort_by_key(|t| t.node);
        assert_eq!(residue.len(), 2);
        assert_eq!(residue[0].node, NodeId(3));
        assert_eq!(residue[0].tag, Tag(7));
        assert_eq!(residue[1].port, 1);
        assert!(store.is_empty());
    }
}
