//! Dataflow node kinds.
//!
//! The node repertoire is exactly what the paper's Algorithm 1 consumes
//! (§III-B): constants (the square "root" nodes of Figs. 1–2), binary
//! arithmetic and comparison operators (optionally with one immediate
//! operand, as in Example 2's `id1 - 1` and `id1 > 0`), the control nodes
//! *steer* (triangles) and *inctag* (lozenges) from \[5\] (TALM), and output
//! sinks that collect final tokens.

use gammaflow_multiset::value::{BinOp, CmpOp, UnOp, Value, ValueError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which side of a binary operator an immediate operand occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImmSide {
    /// `imm op x`
    Left,
    /// `x op imm`
    Right,
}

/// An immediate (compile-time constant) operand fused into a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Imm {
    /// Operand position.
    pub side: ImmSide,
    /// The constant.
    pub value: Value,
}

impl Imm {
    /// `x op imm` — the common direction (Example 2's `- 1`, `> 0`).
    pub fn right(value: impl Into<Value>) -> Imm {
        Imm {
            side: ImmSide::Right,
            value: value.into(),
        }
    }

    /// `imm op x`.
    pub fn left(value: impl Into<Value>) -> Imm {
        Imm {
            side: ImmSide::Left,
            value: value.into(),
        }
    }
}

/// The operation a dataflow node performs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Root/constant node (square in the paper's figures). No inputs; emits
    /// its value once, at tag 0, on every out-edge when execution starts.
    Const(Value),
    /// Binary arithmetic node. Two input ports, or one when an immediate is
    /// fused.
    Arith(BinOp, Option<Imm>),
    /// Comparison node. Produces the *integer* control encoding the paper
    /// uses (`1` for true, `0` for false — see reaction R14), so its output
    /// can feed steer control ports and be compared with `== 1` in Gamma.
    Cmp(CmpOp, Option<Imm>),
    /// Unary operator node. One input port.
    Un(UnOp),
    /// Steer node (triangle): port 0 = data, port 1 = boolean/integer
    /// control. Routes the data token to the true out-port (0) or false
    /// out-port (1).
    Steer,
    /// Inctag node (lozenge): forwards its input with the tag incremented,
    /// marking the next loop iteration.
    IncTag,
    /// Output sink: tokens delivered here are collected (labelled by their
    /// in-edge) as the program's results.
    Output,
}

impl NodeKind {
    /// Number of input ports this kind requires.
    pub fn input_ports(&self) -> usize {
        match self {
            NodeKind::Const(_) => 0,
            NodeKind::Arith(_, imm) | NodeKind::Cmp(_, imm) => {
                if imm.is_some() {
                    1
                } else {
                    2
                }
            }
            NodeKind::Un(_) => 1,
            NodeKind::Steer => 2,
            NodeKind::IncTag => 1,
            NodeKind::Output => 1,
        }
    }

    /// Number of output ports: steer has two (true/false), output sinks
    /// none, everything else one.
    pub fn output_ports(&self) -> usize {
        match self {
            NodeKind::Steer => 2,
            NodeKind::Output => 0,
            _ => 1,
        }
    }

    /// Shape used in the paper's figures (and our graphviz export).
    pub fn shape(&self) -> &'static str {
        match self {
            NodeKind::Const(_) => "square",
            NodeKind::Steer => "triangle",
            NodeKind::IncTag => "diamond",
            NodeKind::Output => "doublecircle",
            _ => "circle",
        }
    }

    /// Apply a pure operator kind to its gathered input values. `Const`,
    /// `Steer`, `IncTag` and `Output` are handled by the engines (they
    /// touch tags or routing, not just values).
    pub fn apply(&self, inputs: &[Value]) -> Result<Value, ValueError> {
        match self {
            NodeKind::Arith(op, imm) => {
                let (a, b) = Self::operands(imm, inputs);
                Value::binop(*op, a, b)
            }
            NodeKind::Cmp(op, imm) => {
                let (a, b) = Self::operands(imm, inputs);
                let r = Value::cmp_op(*op, a, b)?;
                // Integer control encoding, per the paper's R14.
                Ok(Value::Int(if r == Value::Bool(true) { 1 } else { 0 }))
            }
            NodeKind::Un(op) => Value::unop(*op, &inputs[0]),
            _ => unreachable!("apply() called on non-operator node"),
        }
    }

    fn operands<'a>(imm: &'a Option<Imm>, inputs: &'a [Value]) -> (&'a Value, &'a Value) {
        match imm {
            None => (&inputs[0], &inputs[1]),
            Some(Imm {
                side: ImmSide::Left,
                value,
            }) => (value, &inputs[0]),
            Some(Imm {
                side: ImmSide::Right,
                value,
            }) => (&inputs[0], value),
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Const(v) => write!(f, "const {v}"),
            NodeKind::Arith(op, None) => write!(f, "{op}"),
            NodeKind::Arith(op, Some(Imm { side, value })) => match side {
                ImmSide::Left => write!(f, "{value} {op} _"),
                ImmSide::Right => write!(f, "_ {op} {value}"),
            },
            NodeKind::Cmp(op, None) => write!(f, "{op}"),
            NodeKind::Cmp(op, Some(Imm { side, value })) => match side {
                ImmSide::Left => write!(f, "{value} {op} _"),
                ImmSide::Right => write!(f, "_ {op} {value}"),
            },
            NodeKind::Un(op) => write!(f, "{op}"),
            NodeKind::Steer => write!(f, "steer"),
            NodeKind::IncTag => write!(f, "inctag"),
            NodeKind::Output => write!(f, "output"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_counts() {
        assert_eq!(NodeKind::Const(Value::int(1)).input_ports(), 0);
        assert_eq!(NodeKind::Arith(BinOp::Add, None).input_ports(), 2);
        assert_eq!(
            NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))).input_ports(),
            1
        );
        assert_eq!(NodeKind::Steer.input_ports(), 2);
        assert_eq!(NodeKind::Steer.output_ports(), 2);
        assert_eq!(NodeKind::Output.output_ports(), 0);
        assert_eq!(NodeKind::IncTag.input_ports(), 1);
    }

    #[test]
    fn arith_apply() {
        let add = NodeKind::Arith(BinOp::Add, None);
        assert_eq!(
            add.apply(&[Value::int(2), Value::int(3)]).unwrap(),
            Value::int(5)
        );
    }

    #[test]
    fn imm_sides() {
        // x - 1 (Example 2's decrement, R18).
        let dec = NodeKind::Arith(BinOp::Sub, Some(Imm::right(1)));
        assert_eq!(dec.apply(&[Value::int(10)]).unwrap(), Value::int(9));
        // 1 - x.
        let rsub = NodeKind::Arith(BinOp::Sub, Some(Imm::left(1)));
        assert_eq!(rsub.apply(&[Value::int(10)]).unwrap(), Value::int(-9));
    }

    #[test]
    fn cmp_produces_integer_control() {
        // Example 2's R14: id1 > 0 produces 1/0.
        let gt0 = NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0)));
        assert_eq!(gt0.apply(&[Value::int(5)]).unwrap(), Value::int(1));
        assert_eq!(gt0.apply(&[Value::int(0)]).unwrap(), Value::int(0));
        assert_eq!(gt0.apply(&[Value::int(-2)]).unwrap(), Value::int(0));
    }

    #[test]
    fn division_error_propagates() {
        let div = NodeKind::Arith(BinOp::Div, None);
        assert!(div.apply(&[Value::int(1), Value::int(0)]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeKind::Arith(BinOp::Add, None).to_string(), "+");
        assert_eq!(
            NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))).to_string(),
            "_ - 1"
        );
        assert_eq!(NodeKind::Steer.to_string(), "steer");
    }
}
