//! Dataflow graph representation and builder.
//!
//! A dynamic dataflow program is a directed graph `D(I, E)` (the paper's
//! notation): instructions `I` as nodes, data dependencies `E` as edges.
//! Every edge carries a unique **label** — the paper's `A1`, `B17`, … —
//! because Algorithm 1 turns edges into multiset-element labels; the
//! builder assigns fresh labels automatically and lets callers override
//! them to reproduce the paper's figures verbatim.
//!
//! Structural conventions (DESIGN.md §3):
//!
//! * a node has one *logical* output port (steer has two: true=0, false=1);
//!   fan-out is multiple edges from the same port, each with its own label;
//! * an input port may have **several** in-edges (a merge) — the loop-back
//!   pattern of Fig. 2, where an inctag's single input is fed by both the
//!   initial edge (`A1`) and the loop-back edge (`A11`).

use crate::node::NodeKind;
use gammaflow_multiset::{Symbol, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Node identifier (index into the graph's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Edge identifier (index into the graph's edge table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Output port of a node: `True` doubles as the single output port of
/// non-steer nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutPort {
    /// Normal output / steer true-port.
    True,
    /// Steer false-port.
    False,
}

impl OutPort {
    /// Port index (0/1).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            OutPort::True => 0,
            OutPort::False => 1,
        }
    }
}

/// A node: an instruction of the dataflow program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier.
    pub id: NodeId,
    /// Operation.
    pub kind: NodeKind,
    /// Human-readable name (`R1`, `R16`, …); used in traces, graphviz, and
    /// as the generated reaction name by Algorithm 1.
    pub name: String,
}

/// An edge: a data dependency carrying tagged tokens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Identifier.
    pub id: EdgeId,
    /// Producer node.
    pub src: NodeId,
    /// Producer output port.
    pub src_port: OutPort,
    /// Consumer node.
    pub dst: NodeId,
    /// Consumer input port index.
    pub dst_port: usize,
    /// Unique label (the paper's `A1`, `B2`, …).
    pub label: Symbol,
}

/// A complete dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataflowGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// `in_edges[node][port]` → edge ids feeding that port.
    in_edges: Vec<Vec<Vec<EdgeId>>>,
    /// `out_edges[node][outport]` → edge ids leaving that port.
    out_edges: Vec<[Vec<EdgeId>; 2]>,
}

impl DataflowGraph {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Edge by id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge ids feeding `(node, port)`.
    pub fn in_edges(&self, node: NodeId, port: usize) -> &[EdgeId] {
        &self.in_edges[node.index()][port]
    }

    /// Edge ids leaving `(node, out_port)`.
    pub fn out_edges(&self, node: NodeId, port: OutPort) -> &[EdgeId] {
        &self.out_edges[node.index()][port.index()]
    }

    /// All edges leaving `node` on any port.
    pub fn all_out_edges(&self, node: NodeId) -> impl Iterator<Item = &Edge> {
        self.out_edges[node.index()]
            .iter()
            .flatten()
            .map(|&e| self.edge(e))
    }

    /// Root (constant) nodes — the squares that seed execution.
    pub fn roots(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Const(_)))
    }

    /// Output sink nodes.
    pub fn outputs(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Output))
    }

    /// Labels of all edges entering output sinks — the program's observable
    /// result labels, used by the equivalence checker.
    pub fn output_labels(&self) -> Vec<Symbol> {
        let mut labels: Vec<Symbol> = self
            .edges
            .iter()
            .filter(|e| matches!(self.node(e.dst).kind, NodeKind::Output))
            .map(|e| e.label)
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Find an edge by label.
    pub fn edge_by_label(&self, label: Symbol) -> Option<&Edge> {
        self.edges.iter().find(|e| e.label == label)
    }

    /// Find a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Graphviz rendering with the paper's shape conventions (squares for
    /// constants, triangles for steers, lozenges for inctags).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph dataflow {{");
        let _ = writeln!(s, "  rankdir=TB;");
        for n in &self.nodes {
            let _ = writeln!(
                s,
                "  n{} [label=\"{}\\n{}\", shape={}];",
                n.id.0,
                n.name,
                n.kind,
                n.kind.shape()
            );
        }
        for e in &self.edges {
            let style = if e.src_port == OutPort::False {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                s,
                "  n{} -> n{} [label=\"{}\"{}];",
                e.src.0, e.dst.0, e.label, style
            );
        }
        let _ = writeln!(s, "}}");
        s
    }
}

/// Graph construction errors (reported by [`GraphBuilder::build`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An input port has no incoming edge.
    UnconnectedInput {
        /// The node.
        node: String,
        /// The port index.
        port: usize,
    },
    /// An edge targets a port beyond the node's arity.
    BadPort {
        /// The node.
        node: String,
        /// The offending port index.
        port: usize,
    },
    /// An edge leaves the false port of a non-steer node.
    BadOutPort {
        /// The node.
        node: String,
    },
    /// Two edges share a label.
    DuplicateLabel(Symbol),
    /// A constant node has an in-edge.
    ConstWithInput {
        /// The node.
        node: String,
    },
    /// A cycle contains no inctag node, so its iterations would collide on
    /// equal tags.
    UntaggedCycle {
        /// A node on the offending cycle.
        node: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnconnectedInput { node, port } => {
                write!(f, "node {node}: input port {port} is unconnected")
            }
            GraphError::BadPort { node, port } => {
                write!(f, "node {node}: port {port} out of range")
            }
            GraphError::BadOutPort { node } => {
                write!(f, "node {node}: false out-port on a non-steer node")
            }
            GraphError::DuplicateLabel(l) => write!(f, "duplicate edge label `{l}`"),
            GraphError::ConstWithInput { node } => {
                write!(f, "constant node {node} has an input edge")
            }
            GraphError::UntaggedCycle { node } => {
                write!(f, "cycle through {node} contains no inctag node")
            }
        }
    }
}
impl std::error::Error for GraphError {}

/// Incremental builder for [`DataflowGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    next_label: u32,
}

impl GraphBuilder {
    /// Fresh builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Add a node of `kind` with an autogenerated name.
    pub fn add(&mut self, kind: NodeKind) -> NodeId {
        let name = format!("n{}", self.nodes.len());
        self.add_named(kind, name)
    }

    /// Add a node with an explicit name.
    pub fn add_named(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
        });
        id
    }

    /// Add a constant (root) node.
    pub fn constant(&mut self, value: impl Into<Value>) -> NodeId {
        self.add(NodeKind::Const(value.into()))
    }

    /// Add a named constant.
    pub fn constant_named(&mut self, value: impl Into<Value>, name: &str) -> NodeId {
        self.add_named(NodeKind::Const(value.into()), name)
    }

    /// Add an output sink.
    pub fn output(&mut self, name: &str) -> NodeId {
        self.add_named(NodeKind::Output, name)
    }

    /// Connect `src`'s main output to `(dst, dst_port)` with a fresh label.
    pub fn connect(&mut self, src: NodeId, dst: NodeId, dst_port: usize) -> EdgeId {
        self.connect_full(src, OutPort::True, dst, dst_port, None)
    }

    /// Connect with an explicit label.
    pub fn connect_labelled(
        &mut self,
        src: NodeId,
        dst: NodeId,
        dst_port: usize,
        label: &str,
    ) -> EdgeId {
        self.connect_full(src, OutPort::True, dst, dst_port, Some(label))
    }

    /// Fully explicit connection.
    pub fn connect_full(
        &mut self,
        src: NodeId,
        src_port: OutPort,
        dst: NodeId,
        dst_port: usize,
        label: Option<&str>,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len() as u32);
        let label = match label {
            Some(l) => Symbol::intern(l),
            None => {
                let l = Symbol::intern(&format!("e{}", self.next_label));
                self.next_label += 1;
                l
            }
        };
        self.edges.push(Edge {
            id,
            src,
            src_port,
            dst,
            dst_port,
            label,
        });
        id
    }

    /// Finish, validating structure (port arities, labels, tagged cycles).
    pub fn build(self) -> Result<DataflowGraph, Vec<GraphError>> {
        let mut errors = Vec::new();
        let n = self.nodes.len();
        let mut in_edges: Vec<Vec<Vec<EdgeId>>> = self
            .nodes
            .iter()
            .map(|node| vec![Vec::new(); node.kind.input_ports()])
            .collect();
        let mut out_edges: Vec<[Vec<EdgeId>; 2]> = vec![[Vec::new(), Vec::new()]; n];

        let mut seen_labels = gammaflow_multiset::FxHashSet::default();
        for e in &self.edges {
            if !seen_labels.insert(e.label) {
                errors.push(GraphError::DuplicateLabel(e.label));
            }
            let dst_node = &self.nodes[e.dst.index()];
            if matches!(dst_node.kind, NodeKind::Const(_)) {
                errors.push(GraphError::ConstWithInput {
                    node: dst_node.name.clone(),
                });
                continue;
            }
            if e.dst_port >= dst_node.kind.input_ports() {
                errors.push(GraphError::BadPort {
                    node: dst_node.name.clone(),
                    port: e.dst_port,
                });
                continue;
            }
            let src_node = &self.nodes[e.src.index()];
            if e.src_port == OutPort::False && !matches!(src_node.kind, NodeKind::Steer) {
                errors.push(GraphError::BadOutPort {
                    node: src_node.name.clone(),
                });
                continue;
            }
            in_edges[e.dst.index()][e.dst_port].push(e.id);
            out_edges[e.src.index()][e.src_port.index()].push(e.id);
        }

        for (i, node) in self.nodes.iter().enumerate() {
            for (port, feeds) in in_edges[i].iter().enumerate() {
                if feeds.is_empty() {
                    errors.push(GraphError::UnconnectedInput {
                        node: node.name.clone(),
                        port,
                    });
                }
            }
        }

        // Cycle check: every cycle must pass through an inctag, otherwise
        // iterations would collide on equal tags. DFS over the graph with
        // inctag nodes removed; a back edge there is an untagged cycle.
        if errors.is_empty() {
            if let Some(node_idx) = find_untagged_cycle(&self.nodes, &self.edges) {
                errors.push(GraphError::UntaggedCycle {
                    node: self.nodes[node_idx].name.clone(),
                });
            }
        }

        if errors.is_empty() {
            Ok(DataflowGraph {
                nodes: self.nodes,
                edges: self.edges,
                in_edges,
                out_edges,
            })
        } else {
            Err(errors)
        }
    }
}

/// Find a node on a cycle that avoids all inctag nodes, if any.
fn find_untagged_cycle(nodes: &[Node], edges: &[Edge]) -> Option<usize> {
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in edges {
        let (s, d) = (e.src.index(), e.dst.index());
        // Drop edges touching inctags: they break tag-cycles.
        if matches!(nodes[s].kind, NodeKind::IncTag) || matches!(nodes[d].kind, NodeKind::IncTag) {
            continue;
        }
        adj[s].push(d);
    }
    // Iterative three-colour DFS.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; n];
    for start in 0..n {
        if colour[start] != Colour::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = Colour::Grey;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < adj[u].len() {
                let v = adj[u][*next];
                *next += 1;
                match colour[v] {
                    Colour::White => {
                        colour[v] = Colour::Grey;
                        stack.push((v, 0));
                    }
                    Colour::Grey => return Some(v),
                    Colour::Black => {}
                }
            } else {
                colour[u] = Colour::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_multiset::value::{BinOp, CmpOp};

    /// Build the paper's Fig. 1 graph: m = (x + y) - (k * j).
    pub fn fig1() -> DataflowGraph {
        let mut b = GraphBuilder::new();
        let x = b.constant_named(1, "x");
        let y = b.constant_named(5, "y");
        let k = b.constant_named(3, "k");
        let j = b.constant_named(2, "j");
        let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
        let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
        let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
        let m = b.output("m_sink");
        b.connect_labelled(x, r1, 0, "A1");
        b.connect_labelled(y, r1, 1, "B1");
        b.connect_labelled(k, r2, 0, "C1");
        b.connect_labelled(j, r2, 1, "D1");
        b.connect_labelled(r1, r3, 0, "B2");
        b.connect_labelled(r2, r3, 1, "C2");
        b.connect_labelled(r3, m, 0, "m");
        b.build().unwrap()
    }

    #[test]
    fn fig1_structure() {
        let g = fig1();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.roots().count(), 4);
        assert_eq!(g.outputs().count(), 1);
        let labels: Vec<&str> = g.output_labels().iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["m"]);
    }

    #[test]
    fn unconnected_input_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.constant(1);
        let add = b.add(NodeKind::Arith(BinOp::Add, None));
        b.connect(x, add, 0);
        // Port 1 left dangling.
        let err = b.build().unwrap_err();
        assert!(matches!(
            err[0],
            GraphError::UnconnectedInput { port: 1, .. }
        ));
    }

    #[test]
    fn bad_port_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.constant(1);
        let neg = b.add(NodeKind::Un(gammaflow_multiset::value::UnOp::Neg));
        b.connect(x, neg, 5);
        let err = b.build().unwrap_err();
        assert!(matches!(err[0], GraphError::BadPort { port: 5, .. }));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.constant(1);
        let y = b.constant(2);
        let add = b.add(NodeKind::Arith(BinOp::Add, None));
        b.connect_labelled(x, add, 0, "L");
        b.connect_labelled(y, add, 1, "L");
        let err = b.build().unwrap_err();
        assert!(matches!(err[0], GraphError::DuplicateLabel(_)));
    }

    #[test]
    fn false_port_requires_steer() {
        let mut b = GraphBuilder::new();
        let x = b.constant(1);
        let out = b.output("o");
        b.connect_full(x, OutPort::False, out, 0, None);
        let err = b.build().unwrap_err();
        assert!(matches!(err[0], GraphError::BadOutPort { .. }));
    }

    #[test]
    fn untagged_cycle_rejected() {
        // add -> add loop with no inctag.
        let mut b = GraphBuilder::new();
        let x = b.constant(1);
        let add = b.add(NodeKind::Arith(BinOp::Add, None));
        b.connect(x, add, 0);
        b.connect(add, add, 1);
        let err = b.build().unwrap_err();
        assert!(matches!(err[0], GraphError::UntaggedCycle { .. }));
    }

    #[test]
    fn tagged_cycle_accepted() {
        // Loop through an inctag is fine (structure-only test; semantics in
        // the engine tests).
        let mut b = GraphBuilder::new();
        let x = b.constant(10);
        let z = b.constant(1);
        let inc = b.add(NodeKind::IncTag);
        let cmp = b.add(NodeKind::Cmp(CmpOp::Gt, Some(crate::node::Imm::right(0))));
        let steer = b.add(NodeKind::Steer);
        let dec = b.add(NodeKind::Arith(
            BinOp::Sub,
            Some(crate::node::Imm::right(1)),
        ));
        let _unused = z;
        b.connect(x, inc, 0); // initial entry
        b.connect(inc, cmp, 0);
        b.connect(inc, steer, 0);
        b.connect(cmp, steer, 1);
        b.connect_full(steer, OutPort::True, dec, 0, None);
        b.connect(dec, inc, 0); // loop-back through inctag
        let g = b.build().unwrap();
        assert_eq!(g.in_edges(inc, 0).len(), 2, "merge port has two in-edges");
    }

    #[test]
    fn dot_export_mentions_shapes() {
        let g = fig1();
        let dot = g.to_dot();
        assert!(dot.contains("shape=square"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("label=\"A1\""));
    }

    #[test]
    fn lookup_helpers() {
        let g = fig1();
        assert!(g.node_by_name("R1").is_some());
        assert!(g.edge_by_label(Symbol::intern("B2")).is_some());
        let r3 = g.node_by_name("R3").unwrap().id;
        assert_eq!(g.in_edges(r3, 0).len(), 1);
        assert_eq!(g.out_edges(r3, OutPort::True).len(), 1);
    }
}
