//! Lexer for the Gamma reaction language (the paper's Fig. 3 grammar).
//!
//! The surface syntax is the one used throughout the paper's examples:
//!
//! ```text
//! R16 = replace [id1,'B13',v], [id2,'B15',v]
//!       by [id1,'B17',v] if id2 == 1
//!       by 0 else
//! ```
//!
//! Tokens carry line/column spans for error reporting.

use std::fmt;

/// Lexical token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier (variable or reaction name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Quoted label/string literal: `'A1'`.
    Str(String),
    /// `replace`
    Replace,
    /// `by`
    By,
    /// `if`
    If,
    /// `else`
    Else,
    /// `where`
    Where,
    /// `or`
    Or,
    /// `and`
    And,
    /// `xor`
    Xor,
    /// `not`
    Not,
    /// `true`
    True,
    /// `false`
    False,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `|` — parallel composition.
    Pipe,
    /// `;` — sequential composition.
    Semi,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(x) => write!(f, "integer `{x}`"),
            Tok::Str(s) => write!(f, "label `'{s}'`"),
            Tok::Replace => write!(f, "`replace`"),
            Tok::By => write!(f, "`by`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::Where => write!(f, "`where`"),
            Tok::Or => write!(f, "`or`"),
            Tok::And => write!(f, "`and`"),
            Tok::Xor => write!(f, "`xor`"),
            Tok::Not => write!(f, "`not`"),
            Tok::True => write!(f, "`true`"),
            Tok::False => write!(f, "`false`"),
            Tok::Min => write!(f, "`min`"),
            Tok::Max => write!(f, "`max`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}
impl std::error::Error for LexError {}

/// Tokenise `src`. Comments run from `#` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start_col = col;
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
                continue;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
                continue;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '[' => {
                push!(Tok::LBracket, start_col);
                i += 1;
                col += 1;
            }
            ']' => {
                push!(Tok::RBracket, start_col);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(Tok::LParen, start_col);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(Tok::RParen, start_col);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(Tok::Comma, start_col);
                i += 1;
                col += 1;
            }
            '+' => {
                push!(Tok::Plus, start_col);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(Tok::Minus, start_col);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(Tok::Star, start_col);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(Tok::Slash, start_col);
                i += 1;
                col += 1;
            }
            '%' => {
                push!(Tok::Percent, start_col);
                i += 1;
                col += 1;
            }
            '|' => {
                push!(Tok::Pipe, start_col);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(Tok::Semi, start_col);
                i += 1;
                col += 1;
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::EqEq, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Assign, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::NotEq, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Bang, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '\'' => {
                // Label literal up to the closing quote.
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'\'' {
                    return Err(LexError {
                        msg: "unterminated label literal".into(),
                        line,
                        col: start_col,
                    });
                }
                let s = std::str::from_utf8(&bytes[i + 1..j]).map_err(|_| LexError {
                    msg: "invalid UTF-8 in label".into(),
                    line,
                    col: start_col,
                })?;
                push!(Tok::Str(s.to_string()), start_col);
                col += (j - i + 1) as u32;
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = std::str::from_utf8(&bytes[i..j]).unwrap();
                let value: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` out of range"),
                    line,
                    col: start_col,
                })?;
                push!(Tok::Int(value), start_col);
                col += (j - i) as u32;
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = std::str::from_utf8(&bytes[i..j]).unwrap();
                let tok = match word {
                    "replace" => Tok::Replace,
                    "by" => Tok::By,
                    "if" | "If" => Tok::If,
                    "else" => Tok::Else,
                    "where" => Tok::Where,
                    "or" => Tok::Or,
                    "and" => Tok::And,
                    "xor" => Tok::Xor,
                    "not" => Tok::Not,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "min" => Tok::Min,
                    "max" => Tok::Max,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned {
                    tok,
                    line,
                    col: start_col,
                });
                col += (j - i) as u32;
                i = j;
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character `{other}`"),
                    line,
                    col: start_col,
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_paper_r1() {
        let toks = kinds("R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("R1".into()),
                Tok::Assign,
                Tok::Replace,
                Tok::LBracket,
                Tok::Ident("id1".into()),
                Tok::Comma,
                Tok::Str("A1".into()),
                Tok::RBracket,
                Tok::Comma,
                Tok::LBracket,
                Tok::Ident("id2".into()),
                Tok::Comma,
                Tok::Str("B1".into()),
                Tok::RBracket,
                Tok::By,
                Tok::LBracket,
                Tok::Ident("id1".into()),
                Tok::Plus,
                Tok::Ident("id2".into()),
                Tok::Comma,
                Tok::Str("B2".into()),
                Tok::RBracket,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_comparisons() {
        assert_eq!(
            kinds("a == b != c <= d >= e < f > g"),
            vec![
                Tok::Ident("a".into()),
                Tok::EqEq,
                Tok::Ident("b".into()),
                Tok::NotEq,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Ge,
                Tok::Ident("e".into()),
                Tok::Lt,
                Tok::Ident("f".into()),
                Tok::Gt,
                Tok::Ident("g".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn capital_if_is_accepted() {
        // The paper's examples alternate between `if` and `If`.
        assert_eq!(kinds("If id1 > 0"), kinds("if id1 > 0"));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # trailing\nb // also\nc"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_label_is_error() {
        let err = lex("['A1").unwrap_err();
        assert!(err.msg.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_error() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.msg.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn pipe_and_semi() {
        assert_eq!(
            kinds("R1 | R2 ; R3"),
            vec![
                Tok::Ident("R1".into()),
                Tok::Pipe,
                Tok::Ident("R2".into()),
                Tok::Semi,
                Tok::Ident("R3".into()),
                Tok::Eof
            ]
        );
    }
}
