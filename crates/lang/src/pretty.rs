//! Pretty-printer emitting paper-style Gamma code.
//!
//! The printer is the inverse of the parser: `parse(pretty(spec))` returns
//! a structurally equal spec (checked by property tests in this module).
//! [`LabelPat::OneOf`] patterns — produced by Algorithm 1 for merged inputs
//! — are printed the way the paper writes them: a label variable plus a
//! disjunction condition, which the parser's normalisation lifts back.

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{
    GammaProgram, Guard, LabelPat, LabelSpec, Pattern, Pipeline, ReactionSpec, TagPat, TagSpec,
    ValuePat,
};
use gammaflow_multiset::value::CmpOp;
use gammaflow_multiset::{Symbol, Value};
use std::fmt::Write;

/// Render one pattern, returning the text and (for `OneOf`) the condition
/// that must be re-emitted.
fn pattern_text(p: &Pattern, fresh: &mut u32) -> (String, Option<Expr>) {
    let mut s = String::from("[");
    match &p.value {
        ValuePat::Var(v) => {
            let _ = write!(s, "{v}");
        }
        ValuePat::Lit(Value::Str(l)) => {
            let _ = write!(s, "'{l}'");
        }
        ValuePat::Lit(v) => {
            let _ = write!(s, "{v}");
        }
    }
    let mut cond = None;
    match &p.label {
        LabelPat::Lit(l) => {
            let _ = write!(s, ",'{l}'");
        }
        LabelPat::Var(v) => {
            let _ = write!(s, ",{v}");
        }
        LabelPat::OneOf(labels, var) => {
            let var = var.unwrap_or_else(|| {
                *fresh += 1;
                Symbol::intern(&format!("_lbl{fresh}"))
            });
            let _ = write!(s, ",{var}");
            cond = labels
                .iter()
                .map(|l| Expr::cmp(CmpOp::Eq, Expr::Var(var), Expr::str(l.as_str())))
                .reduce(Expr::or);
        }
    }
    match &p.tag {
        TagPat::Var(v) => {
            let _ = write!(s, ",{v}");
        }
        TagPat::Lit(t) => {
            let _ = write!(s, ",{t}");
        }
        TagPat::Any => {}
    }
    s.push(']');
    (s, cond)
}

fn element_text(e: &gammaflow_gamma::spec::ElementSpec) -> String {
    let mut s = String::from("[");
    let _ = write!(s, "{}", e.value);
    match &e.label {
        LabelSpec::Lit(l) => {
            let _ = write!(s, ",'{l}'");
        }
        LabelSpec::Var(v) => {
            let _ = write!(s, ",{v}");
        }
    }
    if let TagSpec::Expr(t) = &e.tag {
        let _ = write!(s, ",{t}");
    }
    s.push(']');
    s
}

/// Render a reaction in the paper's style.
pub fn pretty_reaction(spec: &ReactionSpec) -> String {
    let mut fresh = 0u32;
    let mut out = String::new();
    let _ = write!(out, "{} = replace ", spec.name);

    let mut lifted: Vec<Expr> = Vec::new();
    for (i, p) in spec.patterns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let (text, cond) = pattern_text(p, &mut fresh);
        out.push_str(&text);
        if let Some(c) = cond {
            lifted.push(c);
        }
    }
    let lifted = lifted.into_iter().reduce(Expr::and);

    // Where goes right after the replace list, with lifted OneOf conditions
    // folded in when an if/else chain prevents printing them as `if`.
    let single_always = spec.clauses.len() == 1 && matches!(spec.clauses[0].guard, Guard::Always);
    let mut where_parts: Vec<Expr> = Vec::new();
    if let Some(w) = &spec.where_cond {
        where_parts.push(w.clone());
    }
    let mut if_cond_from_oneof = None;
    if let Some(l) = lifted {
        if single_always && spec.where_cond.is_none() {
            // Print paper-style: `by ... if (x=='A1') or (x=='A11')`.
            if_cond_from_oneof = Some(l);
        } else {
            where_parts.push(l);
        }
    }
    if let Some(w) = where_parts.into_iter().reduce(Expr::and) {
        let _ = write!(out, " where {w}");
    }

    for clause in &spec.clauses {
        out.push_str("\n     by ");
        if clause.outputs.is_empty() {
            out.push('0');
        } else {
            for (i, e) in clause.outputs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&element_text(e));
            }
        }
        match &clause.guard {
            Guard::Always => {
                if let Some(c) = &if_cond_from_oneof {
                    let _ = write!(out, " if {c}");
                }
            }
            Guard::If(c) => {
                let _ = write!(out, " if {c}");
            }
            Guard::Else => out.push_str(" else"),
        }
    }
    out
}

/// Render a parallel program: reactions separated by blank lines.
pub fn pretty_program(prog: &GammaProgram) -> String {
    prog.reactions
        .iter()
        .map(pretty_reaction)
        .collect::<Vec<_>>()
        .join("\n\n")
}

/// Render a pipeline: stages separated by `;` lines.
pub fn pretty_pipeline(pipe: &Pipeline) -> String {
    pipe.stages
        .iter()
        .map(pretty_program)
        .collect::<Vec<_>>()
        .join("\n\n;\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_reaction};
    use gammaflow_gamma::spec::ElementSpec;
    use gammaflow_multiset::value::BinOp;
    use proptest::prelude::*;

    #[test]
    fn prints_r1_like_the_paper() {
        let r = ReactionSpec::new("R1")
            .replace(Pattern::pair("id1", "A1"))
            .replace(Pattern::pair("id2", "B1"))
            .by(vec![ElementSpec::pair(
                Expr::bin(BinOp::Add, Expr::var("id1"), Expr::var("id2")),
                "B2",
            )]);
        assert_eq!(
            pretty_reaction(&r),
            "R1 = replace [id1,'A1'], [id2,'B1']\n     by [id1 + id2,'B2']"
        );
    }

    #[test]
    fn prints_steer_if_else() {
        let r = ReactionSpec::new("R16")
            .replace(Pattern::tagged("id1", "B13", "v"))
            .replace(Pattern::tagged("id2", "B15", "v"))
            .by_if(
                vec![ElementSpec::tagged(Expr::var("id1"), "B17", "v")],
                Expr::cmp(CmpOp::Eq, Expr::var("id2"), Expr::int(1)),
            )
            .by_else(vec![]);
        assert_eq!(
            pretty_reaction(&r),
            "R16 = replace [id1,'B13',v], [id2,'B15',v]\n     by [id1,'B17',v] if id2 == 1\n     by 0 else"
        );
    }

    #[test]
    fn prints_inctag_oneof_paper_style() {
        let r = ReactionSpec::new("R11")
            .replace(Pattern::one_of("id1", "x", &["A1", "A11"], "v"))
            .by(vec![ElementSpec::inc_tagged(Expr::var("id1"), "A12", "v")]);
        assert_eq!(
            pretty_reaction(&r),
            "R11 = replace [id1,x,v]\n     by [id1,'A12',v + 1] if x == 'A1' or x == 'A11'"
        );
    }

    #[test]
    fn roundtrip_r11() {
        let r = ReactionSpec::new("R11")
            .replace(Pattern::one_of("id1", "x", &["A1", "A11"], "v"))
            .by(vec![ElementSpec::inc_tagged(Expr::var("id1"), "A12", "v")]);
        let printed = pretty_reaction(&r);
        let parsed = parse_reaction(&printed).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn roundtrip_program() {
        let src = "R1 = replace [id1,'A1'], [id2,'B1']\n by [id1 + id2,'B2']\n\nR2 = replace [id1,'C1'], [id2,'D1']\n by [id1 * id2,'C2']";
        let prog = parse_program(src).unwrap();
        let printed = pretty_program(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    // ---- property: parse . pretty == id --------------------------------

    fn arb_label() -> impl Strategy<Value = String> {
        prop::sample::select(vec!["A1", "B1", "B2", "C12", "xout", "n"]).prop_map(|s| s.to_string())
    }

    fn arb_var() -> impl Strategy<Value = String> {
        prop::sample::select(vec!["id1", "id2", "x", "v", "a", "b"]).prop_map(|s| s.to_string())
    }

    fn arb_expr(vars: Vec<String>) -> impl Strategy<Value = Expr> {
        let vars2 = vars.clone();
        let leaf = prop_oneof![
            (-50i64..50).prop_map(Expr::int),
            prop::sample::select(vars2).prop_map(|v| Expr::var(v.as_str())),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (
                    prop::sample::select(vec![
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Min,
                        BinOp::Max
                    ]),
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
                (
                    prop::sample::select(vec![
                        CmpOp::Lt,
                        CmpOp::Le,
                        CmpOp::Gt,
                        CmpOp::Ge,
                        CmpOp::Eq,
                        CmpOp::Ne
                    ]),
                    inner.clone(),
                    inner
                )
                    .prop_map(|(op, a, b)| Expr::cmp(op, a, b)),
            ]
        })
    }

    prop_compose! {
        fn arb_reaction()(
            labels in prop::collection::vec(arb_label(), 1..4),
            vars in prop::collection::vec(arb_var(), 1..4),
            out_label in arb_label(),
            tagged in any::<bool>(),
        )(
            cond in arb_expr({
                let mut vs: Vec<String> = vars.clone();
                vs.dedup();
                vs
            }),
            value in arb_expr({
                let mut vs: Vec<String> = vars.clone();
                vs.dedup();
                vs
            }),
            labels in Just(labels),
            vars in Just(vars),
            out_label in Just(out_label),
            tagged in Just(tagged),
        ) -> ReactionSpec {
            let mut r = ReactionSpec::new("R");
            for (i, (l, v)) in labels.iter().zip(vars.iter()).enumerate() {
                let mut p = if tagged {
                    Pattern::tagged(v, format!("{l}_{i}").as_str(), "v")
                } else {
                    Pattern::pair(v, format!("{l}_{i}").as_str())
                };
                // Avoid duplicate value vars binding different labels being
                // unsatisfiable — that's fine for printing tests.
                let _ = &mut p;
                r = r.replace(p);
            }
            let tag = if tagged { TagSpec::Expr(Expr::var("v")) } else { TagSpec::Zero };
            let out = gammaflow_gamma::spec::ElementSpec {
                value,
                label: LabelSpec::Lit(Symbol::intern(&out_label)),
                tag,
            };
            r.by_if(vec![out], cond).by_else(vec![])
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_parse_pretty_roundtrip(r in arb_reaction()) {
            let printed = pretty_reaction(&r);
            let parsed = parse_reaction(&printed)
                .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
            prop_assert_eq!(parsed, r);
        }

        #[test]
        fn prop_expr_display_roundtrip(e in arb_expr(vec!["x".into(), "y".into()])) {
            let printed = e.to_string();
            let parsed = crate::parser::parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse failed: {err}\n--- printed ---\n{printed}"));
            prop_assert_eq!(parsed, e);
        }
    }
}
