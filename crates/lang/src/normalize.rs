//! Normalisation: lifting label-disjunction conditions into patterns.
//!
//! The paper writes merged-input reactions (inctags fed by an initial edge
//! *and* a loop-back edge) as a wildcard label plus a condition:
//!
//! ```text
//! R11 = replace [id1,x,v] by [id1,'A12',v+1] if (x=='A1') or (x=='A11')
//! ```
//!
//! Executing that literally forces the matcher to scan *every* label. This
//! pass recognises conditions that are pure disjunctions of equality tests
//! on one label variable and replaces the wildcard with an indexable
//! [`LabelPat::OneOf`] — semantically identical (the proof obligation is
//! discharged by the differential tests in this module), and exactly the
//! information Algorithm 2 needs to recognise the reaction as an inctag.

use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{Guard, LabelPat, ReactionSpec};
use gammaflow_multiset::value::{BinOp, CmpOp};
use gammaflow_multiset::{Symbol, Value};

/// Split a conjunction into its top-level conjuncts.
fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Bin(BinOp::And, a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        _ => vec![e],
    }
}

/// Rebuild a conjunction from conjuncts (None for an empty list).
fn rebuild_conjunction(parts: Vec<Expr>) -> Option<Expr> {
    parts.into_iter().reduce(|a, b| Expr::bin(BinOp::And, a, b))
}

/// If `e` is a pure disjunction of `var == 'label'` tests over a single
/// variable, return `(var, labels)`.
fn as_label_disjunction(e: &Expr) -> Option<(Symbol, Vec<Symbol>)> {
    match e {
        Expr::Cmp(CmpOp::Eq, a, b) => {
            let (var, lit) = match (a.as_ref(), b.as_ref()) {
                (Expr::Var(v), Expr::Lit(Value::Str(s))) => (*v, s.clone()),
                (Expr::Lit(Value::Str(s)), Expr::Var(v)) => (*v, s.clone()),
                _ => return None,
            };
            Some((var, vec![Symbol::intern(&lit)]))
        }
        Expr::Bin(BinOp::Or, a, b) => {
            let (va, mut la) = as_label_disjunction(a)?;
            let (vb, lb) = as_label_disjunction(b)?;
            if va != vb {
                return None;
            }
            la.extend(lb);
            Some((va, la))
        }
        _ => None,
    }
}

/// Try to lift label disjunctions from `cond` into the patterns of `spec`.
/// Returns the residual condition (None if fully consumed).
fn lift_from_condition(spec: &mut ReactionSpec, cond: &Expr) -> Option<Expr> {
    let parts = conjuncts(cond);
    let mut residual: Vec<Expr> = Vec::new();
    'part: for part in parts {
        if let Some((var, labels)) = as_label_disjunction(part) {
            // Find the unique pattern binding `var` as a wildcard label.
            let mut target = None;
            for (i, p) in spec.patterns.iter().enumerate() {
                if p.label == LabelPat::Var(var) {
                    if target.is_some() {
                        // Ambiguous; keep the condition as-is.
                        residual.push(part.clone());
                        continue 'part;
                    }
                    target = Some(i);
                }
            }
            if let Some(i) = target {
                let mut labels = labels;
                labels.sort();
                labels.dedup();
                spec.patterns[i].label = LabelPat::OneOf(labels, Some(var));
                continue 'part;
            }
        }
        residual.push(part.clone());
    }
    rebuild_conjunction(residual)
}

/// Normalise a reaction in place. Lifts label disjunctions found in the
/// `where` condition, or in the guard of a reaction whose by-chain is a
/// single `if` clause with no `else` (where the guard is semantically a
/// firing condition). Guards in genuine `if`/`else` chains are left alone —
/// there the false branch must still fire.
pub fn normalize_reaction(spec: &mut ReactionSpec) {
    if let Some(cond) = spec.where_cond.take() {
        spec.where_cond = lift_from_condition(spec, &cond);
    }
    if spec.clauses.len() == 1 {
        if let Guard::If(cond) = spec.clauses[0].guard.clone() {
            let residual = lift_from_condition(spec, &cond);
            spec.clauses[0].guard = match residual {
                Some(c) => Guard::If(c),
                None => Guard::Always,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::spec::{ElementSpec, Pattern};

    #[test]
    fn lifts_simple_disjunction_from_if() {
        let mut r = ReactionSpec::new("R11")
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("id1")),
                label: LabelPat::Var(Symbol::intern("x")),
                tag: gammaflow_gamma::spec::TagPat::Var(Symbol::intern("v")),
            })
            .by_if(
                vec![ElementSpec::inc_tagged(Expr::var("id1"), "A12", "v")],
                Expr::or(
                    Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("A1")),
                    Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("A11")),
                ),
            );
        normalize_reaction(&mut r);
        assert_eq!(
            r.patterns[0],
            Pattern::one_of("id1", "x", &["A1", "A11"], "v")
        );
        assert!(matches!(r.clauses[0].guard, Guard::Always));
    }

    #[test]
    fn lifts_from_where_keeping_residual() {
        let mut r = ReactionSpec::new("R")
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("a")),
                label: LabelPat::Var(Symbol::intern("x")),
                tag: gammaflow_gamma::spec::TagPat::Any,
            })
            .where_(Expr::and(
                Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("L")),
                Expr::cmp(CmpOp::Gt, Expr::var("a"), Expr::int(0)),
            ))
            .by(vec![ElementSpec::pair(Expr::var("a"), "out")]);
        normalize_reaction(&mut r);
        assert!(matches!(&r.patterns[0].label, LabelPat::OneOf(ls, _) if ls.len() == 1));
        assert_eq!(r.where_cond.as_ref().unwrap().to_string(), "a > 0");
    }

    #[test]
    fn leaves_if_else_chains_alone() {
        // With an else branch, lifting would change which tuples reach the
        // else clause — must not happen.
        let cond = Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("L"));
        let mut r = ReactionSpec::new("R")
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("a")),
                label: LabelPat::Var(Symbol::intern("x")),
                tag: gammaflow_gamma::spec::TagPat::Any,
            })
            .by_if(vec![], cond.clone())
            .by_else(vec![]);
        let before = r.clone();
        normalize_reaction(&mut r);
        assert_eq!(r, before);
    }

    #[test]
    fn mixed_variable_disjunction_not_lifted() {
        let mut r = ReactionSpec::new("R")
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("a")),
                label: LabelPat::Var(Symbol::intern("x")),
                tag: gammaflow_gamma::spec::TagPat::Any,
            })
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("b")),
                label: LabelPat::Var(Symbol::intern("y")),
                tag: gammaflow_gamma::spec::TagPat::Any,
            })
            .where_(Expr::or(
                Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("L")),
                Expr::cmp(CmpOp::Eq, Expr::var("y"), Expr::str("M")),
            ))
            .by(vec![]);
        let before = r.clone();
        normalize_reaction(&mut r);
        assert_eq!(
            r, before,
            "cross-variable disjunction must stay a condition"
        );
    }

    #[test]
    fn equality_on_values_not_lifted() {
        // a == 'A1' where a is a *value* var (bound by the value field) must
        // not be lifted into the label pattern.
        let mut r = ReactionSpec::new("R")
            .replace(Pattern::pair("a", "L"))
            .where_(Expr::cmp(CmpOp::Eq, Expr::var("a"), Expr::str("A1")))
            .by(vec![]);
        let before = r.clone();
        normalize_reaction(&mut r);
        assert_eq!(r, before);
    }

    #[test]
    fn duplicate_labels_deduplicated() {
        let mut r = ReactionSpec::new("R")
            .replace(Pattern {
                value: gammaflow_gamma::spec::ValuePat::Var(Symbol::intern("a")),
                label: LabelPat::Var(Symbol::intern("x")),
                tag: gammaflow_gamma::spec::TagPat::Any,
            })
            .by_if(
                vec![],
                Expr::or(
                    Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("L")),
                    Expr::cmp(CmpOp::Eq, Expr::var("x"), Expr::str("L")),
                ),
            );
        normalize_reaction(&mut r);
        match &r.patterns[0].label {
            LabelPat::OneOf(ls, Some(_)) => assert_eq!(ls.len(), 1),
            other => panic!("expected OneOf, got {other:?}"),
        }
    }
}
