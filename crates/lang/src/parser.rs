//! Recursive-descent parser for the Gamma reaction language.
//!
//! Produces [`ReactionSpec`]s (the AST *is* the executable spec — see the
//! gamma crate) and applies [`crate::normalize`] so that paper-style label
//! disjunctions (`if (x=='A1') or (x=='A11')`) are lifted into indexable
//! [`LabelPat::OneOf`] patterns.

use crate::lexer::{lex, LexError, Spanned, Tok};
use crate::normalize::normalize_reaction;
use gammaflow_gamma::expr::Expr;
use gammaflow_gamma::spec::{
    ByClause, ElementSpec, GammaProgram, Guard, LabelPat, LabelSpec, Pattern, Pipeline,
    ReactionSpec, TagPat, TagSpec, ValuePat,
};
use gammaflow_multiset::value::{BinOp, CmpOp, UnOp};
use gammaflow_multiset::{Symbol, Tag, Value};
use std::fmt;

/// Parse errors with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// Line (1-based).
    pub line: u32,
    /// Column (1-based).
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}
impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        }
    }
}

/// Recursion ceiling for expression parsing: recursive descent uses the
/// call stack, so pathological inputs (thousands of nested parens) must be
/// rejected rather than overflow it.
const MAX_EXPR_DEPTH: u32 = 128;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    auto_name: usize,
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            msg: msg.into(),
            line,
            col,
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn at_reaction_start(&self) -> bool {
        matches!(self.peek(), Tok::Replace)
            || (matches!(self.peek(), Tok::Ident(_) | Tok::Min | Tok::Max)
                && matches!(self.peek2(), Tok::Assign))
    }

    // ---- reactions -------------------------------------------------------

    fn reaction(&mut self) -> Result<ReactionSpec, ParseError> {
        // `min`/`max` lex as keywords but are fine reaction names.
        let name = if let (Tok::Ident(_) | Tok::Min | Tok::Max, Tok::Assign) =
            (self.peek(), self.peek2())
        {
            let n = match self.bump() {
                Tok::Ident(n) => n,
                Tok::Min => "min".to_string(),
                Tok::Max => "max".to_string(),
                _ => unreachable!(),
            };
            self.bump(); // '='
            n
        } else {
            self.auto_name += 1;
            format!("R{}", self.auto_name)
        };
        self.expect(&Tok::Replace)?;

        let mut patterns = vec![self.pattern()?];
        while matches!(self.peek(), Tok::Comma) {
            self.bump();
            patterns.push(self.pattern()?);
        }

        let mut where_cond = None;
        if matches!(self.peek(), Tok::Where) {
            self.bump();
            where_cond = Some(self.expr()?);
        }

        let mut clauses = Vec::new();
        while matches!(self.peek(), Tok::By) {
            self.bump();
            let outputs = self.outputs()?;
            let guard = match self.peek() {
                Tok::If => {
                    self.bump();
                    Guard::If(self.expr()?)
                }
                Tok::Else => {
                    self.bump();
                    Guard::Else
                }
                _ => Guard::Always,
            };
            clauses.push(ByClause { outputs, guard });
        }
        if clauses.is_empty() {
            return self.err(format!(
                "reaction {name}: expected at least one `by` clause"
            ));
        }
        // `where` may also be written after the by-chain (Eq. (2) style:
        // `replace x, y by x where x < y`).
        if where_cond.is_none() && matches!(self.peek(), Tok::Where) {
            self.bump();
            where_cond = Some(self.expr()?);
        }

        let mut spec = ReactionSpec {
            name,
            patterns,
            where_cond,
            clauses,
        };
        normalize_reaction(&mut spec);
        Ok(spec)
    }

    /// `0` (empty) or `[e, l, t], [e, l, t], …`
    fn outputs(&mut self) -> Result<Vec<ElementSpec>, ParseError> {
        if matches!(self.peek(), Tok::Int(0)) {
            self.bump();
            return Ok(Vec::new());
        }
        let mut out = vec![self.element()?];
        while matches!(self.peek(), Tok::Comma) {
            self.bump();
            out.push(self.element()?);
        }
        Ok(out)
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        self.expect(&Tok::LBracket)?;
        // Value field.
        let value = match self.bump() {
            Tok::Ident(v) => ValuePat::Var(Symbol::intern(&v)),
            Tok::Int(x) => ValuePat::Lit(Value::Int(x)),
            Tok::Minus => match self.bump() {
                Tok::Int(x) => ValuePat::Lit(Value::Int(-x)),
                other => return self.err(format!("expected integer after `-`, found {other}")),
            },
            Tok::Str(s) => ValuePat::Lit(Value::str(s)),
            Tok::True => ValuePat::Lit(Value::Bool(true)),
            Tok::False => ValuePat::Lit(Value::Bool(false)),
            other => return self.err(format!("expected pattern value field, found {other}")),
        };
        self.expect(&Tok::Comma)?;
        // Label field.
        let label = match self.bump() {
            Tok::Str(l) => LabelPat::Lit(Symbol::intern(&l)),
            Tok::Ident(v) => LabelPat::Var(Symbol::intern(&v)),
            other => return self.err(format!("expected label field, found {other}")),
        };
        // Optional tag field.
        let tag = if matches!(self.peek(), Tok::Comma) {
            self.bump();
            match self.bump() {
                Tok::Ident(v) => TagPat::Var(Symbol::intern(&v)),
                Tok::Int(x) if x >= 0 => TagPat::Lit(Tag(x as u64)),
                other => return self.err(format!("expected tag field, found {other}")),
            }
        } else {
            TagPat::Any
        };
        self.expect(&Tok::RBracket)?;
        Ok(Pattern { value, label, tag })
    }

    fn element(&mut self) -> Result<ElementSpec, ParseError> {
        self.expect(&Tok::LBracket)?;
        let value = self.expr()?;
        self.expect(&Tok::Comma)?;
        let label = match self.bump() {
            Tok::Str(l) => LabelSpec::Lit(Symbol::intern(&l)),
            Tok::Ident(v) => LabelSpec::Var(Symbol::intern(&v)),
            other => return self.err(format!("expected output label, found {other}")),
        };
        let tag = if matches!(self.peek(), Tok::Comma) {
            self.bump();
            TagSpec::Expr(self.expr()?)
        } else {
            TagSpec::Zero
        };
        self.expect(&Tok::RBracket)?;
        Ok(ElementSpec { value, label, tag })
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return self.err("expression too deeply nested");
        }
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Or => BinOp::Or,
                Tok::Xor => BinOp::Xor,
                _ => break,
            };
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Tok::And) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::cmp(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return self.err("expression too deeply nested");
        }
        let r = self.unary_inner();
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                // Fold negation of literals so `-3` is a literal.
                match self.unary()? {
                    Expr::Lit(Value::Int(x)) => Ok(Expr::int(-x)),
                    e => Ok(Expr::un(UnOp::Neg, e)),
                }
            }
            Tok::Not | Tok::Bang => {
                self.bump();
                Ok(Expr::un(UnOp::Not, self.unary()?))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Tok::Int(x) => Ok(Expr::int(x)),
            Tok::Str(s) => Ok(Expr::str(&s)),
            Tok::True => Ok(Expr::bool(true)),
            Tok::False => Ok(Expr::bool(false)),
            Tok::Ident(v) => Ok(Expr::var(v.as_str())),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            t @ (Tok::Min | Tok::Max) => {
                let op = if t == Tok::Min {
                    BinOp::Min
                } else {
                    BinOp::Max
                };
                self.expect(&Tok::LParen)?;
                let a = self.expr()?;
                self.expect(&Tok::Comma)?;
                let b = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::bin(op, a, b))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    // ---- programs --------------------------------------------------------

    fn stage(&mut self) -> Result<GammaProgram, ParseError> {
        let mut reactions = Vec::new();
        loop {
            if matches!(self.peek(), Tok::Pipe) {
                self.bump();
                continue;
            }
            if self.at_reaction_start() {
                reactions.push(self.reaction()?);
            } else {
                break;
            }
        }
        Ok(GammaProgram::new(reactions))
    }
}

/// Parse a single reaction.
pub fn parse_reaction(src: &str) -> Result<ReactionSpec, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        auto_name: 0,
        depth: 0,
    };
    let r = p.reaction()?;
    if !matches!(p.peek(), Tok::Eof) {
        return p.err(format!("unexpected trailing {}", p.peek()));
    }
    Ok(r)
}

/// Parse a parallel program (`R1 | R2 | …`; newlines also separate).
pub fn parse_program(src: &str) -> Result<GammaProgram, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        auto_name: 0,
        depth: 0,
    };
    let prog = p.stage()?;
    if !matches!(p.peek(), Tok::Eof) {
        return p.err(format!(
            "unexpected {} (use parse_pipeline for `;` composition)",
            p.peek()
        ));
    }
    Ok(prog)
}

/// Parse a pipeline: stages separated by `;`, each a parallel program.
pub fn parse_pipeline(src: &str) -> Result<Pipeline, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        auto_name: 0,
        depth: 0,
    };
    let mut stages = vec![p.stage()?];
    while matches!(p.peek(), Tok::Semi) {
        p.bump();
        stages.push(p.stage()?);
    }
    if !matches!(p.peek(), Tok::Eof) {
        return p.err(format!("unexpected trailing {}", p.peek()));
    }
    Ok(Pipeline::new(stages))
}

/// Parse a multiset literal: `{[1,'A1'], [5,'B1',2], ...}` (braces
/// optional, tag optional — the paper's Example-1 pair style). Used by the
/// CLI to accept initial multisets on the command line.
pub fn parse_multiset(src: &str) -> Result<gammaflow_multiset::ElementBag, ParseError> {
    use gammaflow_multiset::{Element, ElementBag, Tag as MTag};
    // Braces are display sugar (`{…}`), not tokens: strip a matched pair.
    let trimmed = src.trim();
    let inner = match (trimmed.strip_prefix('{'), trimmed.strip_suffix('}')) {
        (Some(_), Some(_)) => &trimmed[1..trimmed.len() - 1],
        _ => trimmed,
    };
    let mut p = Parser {
        toks: lex(inner)?,
        pos: 0,
        auto_name: 0,
        depth: 0,
    };
    let mut bag = ElementBag::new();
    loop {
        if matches!(p.peek(), Tok::Eof) {
            break;
        }
        p.expect(&Tok::LBracket)?;
        let value = match p.bump() {
            Tok::Int(x) => gammaflow_multiset::Value::Int(x),
            Tok::Minus => match p.bump() {
                Tok::Int(x) => gammaflow_multiset::Value::Int(-x),
                other => return p.err(format!("expected integer after `-`, found {other}")),
            },
            Tok::Str(s) => gammaflow_multiset::Value::str(s),
            Tok::True => gammaflow_multiset::Value::Bool(true),
            Tok::False => gammaflow_multiset::Value::Bool(false),
            other => return p.err(format!("expected element value, found {other}")),
        };
        p.expect(&Tok::Comma)?;
        let label = match p.bump() {
            Tok::Str(l) => Symbol::intern(&l),
            other => return p.err(format!("expected quoted label, found {other}")),
        };
        let tag = if matches!(p.peek(), Tok::Comma) {
            p.bump();
            match p.bump() {
                Tok::Int(x) if x >= 0 => MTag(x as u64),
                other => return p.err(format!("expected non-negative tag, found {other}")),
            }
        } else {
            MTag::ZERO
        };
        p.expect(&Tok::RBracket)?;
        bag.insert(Element { value, label, tag });
        if matches!(p.peek(), Tok::Comma) {
            p.bump();
        }
    }
    Ok(bag)
}

/// Parse a bare expression (used by tests and the frontend).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        auto_name: 0,
        depth: 0,
    };
    let e = p.expr()?;
    if !matches!(p.peek(), Tok::Eof) {
        return p.err(format!("unexpected trailing {}", p.peek()));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_r1() {
        let r =
            parse_reaction("R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']").unwrap();
        assert_eq!(r.name, "R1");
        assert_eq!(r.patterns.len(), 2);
        assert_eq!(r.patterns[0], Pattern::pair("id1", "A1"));
        assert_eq!(r.clauses.len(), 1);
        assert!(matches!(r.clauses[0].guard, Guard::Always));
        assert_eq!(r.clauses[0].outputs[0].value.to_string(), "id1 + id2");
    }

    #[test]
    fn parses_paper_r16_steer() {
        let r = parse_reaction(
            "R16 = replace [id1,'B13',v], [id2,'B15',v]\n      by [id1,'B17',v] if id2 == 1\n      by 0 else",
        )
        .unwrap();
        assert_eq!(r.patterns[0], Pattern::tagged("id1", "B13", "v"));
        assert_eq!(r.clauses.len(), 2);
        assert!(matches!(r.clauses[0].guard, Guard::If(_)));
        assert!(matches!(r.clauses[1].guard, Guard::Else));
        assert!(r.clauses[1].outputs.is_empty());
        assert_eq!(r.validate(), Ok(()));
    }

    #[test]
    fn parses_paper_r11_inctag_with_normalisation() {
        // The label disjunction is lifted into a OneOf pattern.
        let r =
            parse_reaction("R11 = replace [id1,x,v] by [id1,'A12',v+1] if (x=='A1') or (x=='A11')")
                .unwrap();
        assert_eq!(
            r.patterns[0],
            Pattern::one_of("id1", "x", &["A1", "A11"], "v")
        );
        assert_eq!(r.clauses.len(), 1);
        assert!(matches!(r.clauses[0].guard, Guard::Always));
        match &r.clauses[0].outputs[0].tag {
            TagSpec::Expr(e) => assert_eq!(e.to_string(), "v + 1"),
            other => panic!("bad tag spec {other:?}"),
        }
    }

    #[test]
    fn parses_eq2_where_form() {
        // Eq. (2): R = replace(x, y) by x where x < y — we write tuples.
        let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x,'n'] where x < y").unwrap();
        assert!(r.where_cond.is_some());
        assert_eq!(r.where_cond.as_ref().unwrap().to_string(), "x < y");
    }

    #[test]
    fn parses_r14_three_outputs() {
        let r = parse_reaction(
            "R14 = replace [id1, 'B12', v]\n  by [1,'B14',v], [1,'B15',v], [1,'B16',v] If id1 > 0\n  by [0,'B14',v], [0,'B15',v], [0,'B16',v] else",
        )
        .unwrap();
        assert_eq!(r.clauses[0].outputs.len(), 3);
        assert_eq!(r.clauses[1].outputs.len(), 3);
        assert_eq!(r.validate(), Ok(()));
    }

    #[test]
    fn program_with_pipes() {
        let prog =
            parse_program("R1 = replace [a,'A'] by [a,'B'] | R2 = replace [b,'B'] by [b,'C']")
                .unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(prog.reactions[1].name, "R2");
    }

    #[test]
    fn program_with_newline_separation() {
        let prog =
            parse_program("R1 = replace [a,'A'] by [a,'B']\nR2 = replace [b,'B'] by [b,'C']")
                .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn pipeline_with_semicolons() {
        let pipe =
            parse_pipeline("replace [a,'A'] by [a,'B'] ; replace [b,'B'] by [b,'C']").unwrap();
        assert_eq!(pipe.stages.len(), 2);
        // Auto-named reactions.
        assert_eq!(pipe.stages[0].reactions[0].name, "R1");
    }

    #[test]
    fn semicolon_rejected_in_plain_program() {
        let err =
            parse_program("replace [a,'A'] by [a,'B'] ; replace [b,'B'] by [b,'C']").unwrap_err();
        assert!(err.msg.contains("parse_pipeline"));
    }

    #[test]
    fn expression_precedence() {
        assert_eq!(parse_expr("1 + 2 * 3").unwrap().to_string(), "1 + 2 * 3");
        assert_eq!(
            parse_expr("(1 + 2) * 3").unwrap().to_string(),
            "(1 + 2) * 3"
        );
        assert_eq!(
            parse_expr("a < b and c > d or e == f").unwrap().to_string(),
            "a < b and c > d or e == f"
        );
        assert_eq!(
            parse_expr("min(a, b + 1)").unwrap().to_string(),
            "min(a, b + 1)"
        );
        assert_eq!(parse_expr("-3").unwrap(), Expr::int(-3));
        assert_eq!(parse_expr("not (a == b)").unwrap().to_string(), "!(a == b)");
    }

    #[test]
    fn pattern_with_literal_value_and_tag() {
        let r = parse_reaction("R = replace [1, 'ctl', 0] by 0").unwrap();
        assert_eq!(r.patterns[0].value, ValuePat::Lit(Value::Int(1)));
        assert_eq!(r.patterns[0].tag, TagPat::Lit(Tag(0)));
    }

    #[test]
    fn multiset_literal_parses() {
        let bag = parse_multiset("[1,'A1'], [5,'B1'], [3,'C1',2], [-4,'D']").unwrap();
        assert_eq!(bag.len(), 4);
        assert!(bag.contains(&gammaflow_multiset::Element::pair(1, "A1")));
        assert!(bag.contains(&gammaflow_multiset::Element::new(3, "C1", 2u64)));
        assert!(bag.contains(&gammaflow_multiset::Element::pair(-4, "D")));
    }

    #[test]
    fn multiset_literal_duplicates_accumulate() {
        let bag = parse_multiset("[7,'n'], [7,'n']").unwrap();
        assert_eq!(bag.count(&gammaflow_multiset::Element::pair(7, "n")), 2);
    }

    #[test]
    fn empty_multiset_literal() {
        assert!(parse_multiset("").unwrap().is_empty());
        assert!(parse_multiset("{}").unwrap().is_empty());
    }

    #[test]
    fn braced_multiset_literal() {
        let bag = parse_multiset("{[1,'A1'], [5,'B1']}").unwrap();
        assert_eq!(bag.len(), 2);
    }

    #[test]
    fn bad_multiset_literal_errors() {
        assert!(parse_multiset("[1 'A']").is_err());
        assert!(parse_multiset("[1,'A',-3]").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_reaction("R1 = replace [id1 'A1'] by [id1,'B']").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("expected"));
    }

    #[test]
    fn missing_by_is_error() {
        let err = parse_reaction("R1 = replace [a,'A']").unwrap_err();
        assert!(err.msg.contains("by"));
    }
}
