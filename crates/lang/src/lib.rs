//! Textual Gamma language — the paper's Fig. 3 free-context grammar.
//!
//! The paper presents its examples as Gamma source in the syntax of
//! Muylaert's implementation (`replace … by … if … / by 0 else`, plus the
//! `where` form of Eq. (2)). This crate makes that syntax executable:
//!
//! * [`lexer`] — tokens with positions; accepts the paper's capitalised
//!   `If`, `#`/`//` comments, `|` (parallel) and `;` (sequential)
//!   composition operators.
//! * [`parser`] — recursive descent into [`ReactionSpec`]s /
//!   [`GammaProgram`]s / [`Pipeline`]s. The AST *is* the executable spec
//!   from the gamma crate, so parsed programs run directly.
//! * [`normalize`] — lifts paper-style label disjunctions
//!   (`if (x=='A1') or (x=='A11')`) into indexable `OneOf` patterns.
//! * [`pretty`] — prints specs back in paper style;
//!   `parse ∘ pretty = id` (property-tested).
//!
//! [`ReactionSpec`]: gammaflow_gamma::spec::ReactionSpec
//! [`GammaProgram`]: gammaflow_gamma::spec::GammaProgram
//! [`Pipeline`]: gammaflow_gamma::spec::Pipeline

#![warn(missing_docs)]

pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod pretty;

pub use lexer::{lex, LexError, Spanned, Tok};
pub use normalize::normalize_reaction;
pub use parser::{
    parse_expr, parse_multiset, parse_pipeline, parse_program, parse_reaction, ParseError,
};
pub use pretty::{pretty_pipeline, pretty_program, pretty_reaction};

#[cfg(test)]
mod tests {
    use super::*;
    use gammaflow_gamma::{SeqInterpreter, Status};
    use gammaflow_multiset::{Element, ElementBag};

    /// End-to-end: parse the paper's Example-1 program and run it on the
    /// sequential interpreter with the paper's initial multiset.
    #[test]
    fn example1_program_parses_and_runs() {
        let src = "
R1 = replace [id1, 'A1'], [id2, 'B1']
     by [id1 + id2, 'B2']
R2 = replace [id1, 'C1'], [id2, 'D1']
     by [id1 * id2, 'C2']
R3 = replace [id1, 'B2'], [id2, 'C2']
     by [id1 - id2, 'm']
";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 3);
        // Initial multiset {[1,A1],[5,B1],[3,C1],[2,D1]} from the paper.
        let initial: ElementBag = [
            Element::pair(1, "A1"),
            Element::pair(5, "B1"),
            Element::pair(3, "C1"),
            Element::pair(2, "D1"),
        ]
        .into_iter()
        .collect();
        let result = SeqInterpreter::with_seed(&prog, initial, 0).run().unwrap();
        assert_eq!(result.status, Status::Stable);
        // m = (1+5) - (3*2) = 0.
        assert_eq!(
            result.multiset.sorted_elements(),
            vec![Element::pair(0, "m")]
        );
    }

    /// The reduced single-reaction version (§III-A3, Rd1) computes the same
    /// result.
    #[test]
    fn example1_reduced_program_runs() {
        let src = "
Rd1 = replace [id1,'A1'], [id2,'B1'], [id3,'C1'], [id4,'D1']
      by [(id1+id2)-(id3*id4),'m']
";
        let prog = parse_program(src).unwrap();
        let initial: ElementBag = [
            Element::pair(1, "A1"),
            Element::pair(5, "B1"),
            Element::pair(3, "C1"),
            Element::pair(2, "D1"),
        ]
        .into_iter()
        .collect();
        let result = SeqInterpreter::with_seed(&prog, initial, 0).run().unwrap();
        assert_eq!(
            result.multiset.sorted_elements(),
            vec![Element::pair(0, "m")]
        );
    }

    /// Parse the paper's full Example-2 program (reactions R11–R19) and run
    /// the loop for z = 3: x := x + y three times.
    #[test]
    fn example2_program_parses_and_runs() {
        let src = "
R11 = replace [id1,x,v] by [id1,'A12',v+1] if (x=='A1') or (x=='A11')
R12 = replace [id1,x,v] by [id1,'B12',v+1], [id1,'B13',v+1] if (x=='B1') or (x=='B11')
R13 = replace [id1,x,v] by [id1,'C12',v+1] if (x=='C1') or (x=='C11')
R14 = replace [id1, 'B12', v]
      by [1,'B14',v], [1,'B15',v], [1,'B16',v] If id1 > 0
      by [0,'B14',v], [0,'B15',v], [0,'B16',v] else
R15 = replace [id1,'A12',v], [id2,'B14',v]
      by [id1,'A11',v], [id1,'A13',v] If id2 == 1
      by 0 else
R16 = replace [id1,'B13',v], [id2,'B15',v]
      by [id1,'B17',v] If id2 == 1
      by 0 else
R17 = replace [id1,'C12',v], [id2,'B16',v]
      by [id1,'C13',v] If id2 == 1
      by 0 else
R18 = replace [id1,'B17',v] by [id1 - 1,'B11',v]
R19 = replace [id1,'A13',v], [id2,'C13',v] by [id1+id2,'C11',v]
";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 9);
        // {y=5 on A1, z=3 on B1, x=10 on C1}, all at tag 0.
        let initial: ElementBag = [
            Element::new(5, "A1", 0u64),
            Element::new(3, "B1", 0u64),
            Element::new(10, "C1", 0u64),
        ]
        .into_iter()
        .collect();
        let result = SeqInterpreter::with_seed(&prog, initial, 7).run().unwrap();
        assert_eq!(result.status, Status::Stable);
        // As the paper writes Example 2, every steer discards its data on
        // the final (false) test, so the steady state is an empty multiset.
        assert!(
            result.multiset.is_empty(),
            "paper's Example 2 drains the multiset, got {}",
            result.multiset
        );
        // The loop really ran: R19 (the x += y adder) fired exactly z = 3
        // times.
        let r19_idx = prog.reactions.iter().position(|r| r.name == "R19").unwrap();
        assert_eq!(result.stats.firings_per_reaction[r19_idx], 3);
    }
}
