//! Streaming sessions: one persistent engine, many input waves.
//!
//! A `gamma::Session` compiles the program once, builds the Rete matcher
//! state once, and then alternates `inject` / `run_to_stable` — the
//! production shape for continuous traffic, where the one-shot entry
//! points would rebuild matcher state from scratch per batch. This
//! example streams sensor windows into the windowed-sum workload and
//! contrasts the session against rebuild-per-wave, then shows the same
//! session API driving the sharded parallel engine.
//!
//! ```sh
//! cargo run --release --example streaming_session
//! ```

use gammaflow::gamma::{Engine, ParEngine, Selection, SeqInterpreter, Session, Status};
use gammaflow::workloads::windowed_sum;
use std::time::Instant;

fn main() {
    // 32 waves, each delivering 64 windows of 2 readings. Every window
    // collapses to a total that stays in the bag forever — exactly the
    // regime where per-wave rebuilds pay O(history).
    let stream = windowed_sum(32, 64, 2, 42);
    println!(
        "workload: {} — {} waves × {} elements",
        stream.name,
        stream.waves.len(),
        stream.waves[0].len()
    );

    // One persistent session, resumed across waves.
    let t = Instant::now();
    let mut session = Session::build(&stream.program)
        .selection(Selection::Seeded(1))
        .observer(Box::new(|wave| {
            debug_assert_eq!(wave.status, Status::Stable);
        }))
        .start(stream.initial.clone())
        .expect("program compiles");
    for wave in &stream.waves {
        let _ = session.inject(wave.iter().cloned());
        session.run_to_stable().expect("wave runs");
    }
    let result = session.finish();
    let session_time = t.elapsed();
    assert_eq!(result.multiset, stream.expected);
    println!(
        "session-resume:    {} firings in {:>8.2?}  (matcher state persisted)",
        result.stats.firings_total(),
        session_time
    );

    // The same waves, rebuilding the interpreter on the accumulated bag.
    let t = Instant::now();
    let mut bag = stream.initial.clone();
    let mut firings = 0u64;
    for wave in &stream.waves {
        for e in wave {
            bag.insert(e.clone());
        }
        let r = SeqInterpreter::with_seed(&stream.program, bag, 1)
            .run()
            .expect("rebuild runs");
        firings += r.stats.firings_total();
        bag = r.multiset;
    }
    let rebuild_time = t.elapsed();
    assert_eq!(bag, stream.expected);
    println!(
        "rebuild-per-wave:  {firings} firings in {rebuild_time:>8.2?}  (fresh matcher every wave)",
    );
    println!(
        "speedup: {:.1}x  (finals byte-identical — resume is exact)",
        rebuild_time.as_secs_f64() / session_time.as_secs_f64()
    );

    // The same lifecycle drives the sharded parallel engine: slices,
    // bag, and directory persist; worker threads are scoped per wave.
    let mut par = Session::build(&stream.program)
        .engine(Engine::Parallel(ParEngine::ShardedRete))
        .workers(4)
        .start(stream.initial.clone())
        .expect("program compiles");
    for wave in &stream.waves {
        let _ = par.inject(wave.iter().cloned());
        par.run_to_stable().expect("wave runs");
    }
    let par_result = par.finish_parallel();
    assert_eq!(par_result.exec.multiset, stream.expected);
    println!(
        "parallel session:  {} firings over {} published deltas on 4 workers — same final",
        par_result.exec.stats.firings_total(),
        par_result.par.deltas_published
    );
}
