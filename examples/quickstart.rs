//! Quickstart: compile the paper's Example 1 from C-like source, run it on
//! the dataflow engine, convert it with Algorithm 1, run the Gamma program,
//! and confirm both models agree.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gammaflow::core::dataflow_to_gamma;
use gammaflow::dataflow::SeqEngine;
use gammaflow::gamma::SeqInterpreter;
use gammaflow::lang::pretty_program;
use gammaflow::multiset::Symbol;

fn main() {
    // The paper's Example-1 source (§III-A1), plus an output statement so
    // the result is observable.
    let source =
        "int x = 1; int y = 5; int k = 3; int j = 2; int m; m = (x + y) - (k * j); output m;";
    println!("source:\n  {source}\n");

    // 1. Compile to a dynamic dataflow graph.
    let graph = gammaflow::frontend::compile(source).expect("compiles");
    println!(
        "dataflow graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Execute on the dataflow engine.
    let df = SeqEngine::new(&graph).run().expect("runs");
    println!("dataflow outputs: {}", df.outputs);
    println!("parallelism profile (firings per wave): {:?}\n", df.profile);

    // 3. Convert with Algorithm 1 and print the generated Gamma program.
    let conv = dataflow_to_gamma(&graph).expect("converts");
    println!("Algorithm 1 output:\n{}\n", pretty_program(&conv.program));
    println!("initial multiset M = {}", conv.initial);

    // 4. Execute the Gamma program (seeded nondeterminism).
    let gm = SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 42)
        .run()
        .expect("stabilises");
    println!("gamma steady state: {}", gm.multiset);

    // 5. The equivalence: projected onto output labels, both agree.
    let m = Symbol::intern("m");
    let projected = gm.multiset.project(|l| l == m);
    assert_eq!(projected, df.outputs);
    println!("\nequivalent: both models computed m = (1+5) - (3*2) = 0");
}
