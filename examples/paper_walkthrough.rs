//! The whole paper as one executable walkthrough: Figs. 1–4, both
//! conversion algorithms, the reductions, and the equivalence checks.
//!
//! ```sh
//! cargo run --example paper_walkthrough
//! ```

use gammaflow::core::{
    canonicalize_vars, check_equivalence, dataflow_to_gamma, fuse_all, gamma_to_dataflow,
    map_multiset, recover_shape, CheckConfig,
};
use gammaflow::dataflow::engine::SeqEngine;
use gammaflow::dataflow::graph::{GraphBuilder, OutPort};
use gammaflow::dataflow::node::{Imm, NodeKind};
use gammaflow::gamma::{SeqInterpreter, Status};
use gammaflow::lang::{parse_reaction, pretty_program, pretty_reaction};
use gammaflow::multiset::value::{BinOp, CmpOp};
use gammaflow::multiset::{Element, ElementBag, Symbol};

fn section(title: &str) {
    println!("\n======================================================================");
    println!("{title}");
    println!("======================================================================");
}

fn main() {
    // ---------------------------------------------------------- Fig. 1 --
    section("Fig. 1 — Example 1: m = (x + y) - (k * j)");
    let mut b = GraphBuilder::new();
    let x = b.constant_named(1, "x");
    let y = b.constant_named(5, "y");
    let k = b.constant_named(3, "k");
    let j = b.constant_named(2, "j");
    let r1 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R1");
    let r2 = b.add_named(NodeKind::Arith(BinOp::Mul, None), "R2");
    let r3 = b.add_named(NodeKind::Arith(BinOp::Sub, None), "R3");
    let m = b.output("m_sink");
    b.connect_labelled(x, r1, 0, "A1");
    b.connect_labelled(y, r1, 1, "B1");
    b.connect_labelled(k, r2, 0, "C1");
    b.connect_labelled(j, r2, 1, "D1");
    b.connect_labelled(r1, r3, 0, "B2");
    b.connect_labelled(r2, r3, 1, "C2");
    b.connect_labelled(r3, m, 0, "m");
    let fig1 = b.build().unwrap();
    println!("{}", fig1.to_dot());

    section("Algorithm 1 on Fig. 1 (matches the paper's R1–R3)");
    let conv1 = dataflow_to_gamma(&fig1).unwrap();
    println!("{}", pretty_program(&conv1.program));
    println!("\ninitial multiset M = {}", conv1.initial);

    let report = check_equivalence(&fig1, &CheckConfig::default()).unwrap();
    println!(
        "\ndifferential check: equivalent = {}, outputs = {}",
        report.equivalent, report.dataflow_outputs
    );

    // ------------------------------------------------------ §III-A3 -----
    section("§III-A3 — reduction: fusing R1,R2,R3 into the paper's Rd1");
    let protected: Vec<Symbol> = ["A1", "B1", "C1", "D1", "m"]
        .iter()
        .map(|l| Symbol::intern(l))
        .collect();
    let (fused, freport) = fuse_all(&conv1.program, &protected);
    println!(
        "fused {} → {} reactions via {:?}",
        freport.before, freport.after, freport.fused
    );
    println!(
        "{}",
        pretty_reaction(&canonicalize_vars(&fused.reactions[0]))
    );

    // ---------------------------------------------------------- Fig. 2 --
    section("Fig. 2 — Example 2: for (i = z; i > 0; i--) x = x + y");
    let mut b = GraphBuilder::new();
    let yk = b.constant_named(5, "y");
    let zk = b.constant_named(3, "z");
    let xk = b.constant_named(10, "x");
    let r11 = b.add_named(NodeKind::IncTag, "R11");
    let r12 = b.add_named(NodeKind::IncTag, "R12");
    let r13 = b.add_named(NodeKind::IncTag, "R13");
    let r14 = b.add_named(NodeKind::Cmp(CmpOp::Gt, Some(Imm::right(0))), "R14");
    let r15 = b.add_named(NodeKind::Steer, "R15");
    let r16 = b.add_named(NodeKind::Steer, "R16");
    let r17 = b.add_named(NodeKind::Steer, "R17");
    let r18 = b.add_named(NodeKind::Arith(BinOp::Sub, Some(Imm::right(1))), "R18");
    let r19 = b.add_named(NodeKind::Arith(BinOp::Add, None), "R19");
    b.connect_labelled(yk, r11, 0, "A1");
    b.connect_labelled(zk, r12, 0, "B1");
    b.connect_labelled(xk, r13, 0, "C1");
    b.connect_labelled(r11, r15, 0, "A12");
    b.connect_labelled(r12, r14, 0, "B12");
    b.connect_labelled(r12, r16, 0, "B13");
    b.connect_labelled(r13, r17, 0, "C12");
    b.connect_labelled(r14, r15, 1, "B14");
    b.connect_labelled(r14, r16, 1, "B15");
    b.connect_labelled(r14, r17, 1, "B16");
    b.connect_full(r15, OutPort::True, r11, 0, Some("A11"));
    b.connect_full(r15, OutPort::True, r19, 0, Some("A13"));
    b.connect_full(r16, OutPort::True, r18, 0, Some("B17"));
    b.connect_full(r17, OutPort::True, r19, 1, Some("C13"));
    b.connect_labelled(r18, r12, 0, "B11");
    b.connect_labelled(r19, r13, 0, "C11");
    let fig2 = b.build().unwrap();

    section("Algorithm 1 on Fig. 2 (matches the paper's R11–R19)");
    let conv2 = dataflow_to_gamma(&fig2).unwrap();
    println!("{}", pretty_program(&conv2.program));
    println!("\ninitial multiset M = {}", conv2.initial);

    let gm = SeqInterpreter::with_seed(&conv2.program, conv2.initial.clone(), 7)
        .run()
        .unwrap();
    println!(
        "\ngamma execution: status {:?}, {} firings, final multiset {}",
        gm.status,
        gm.stats.firings_total(),
        gm.multiset
    );
    assert_eq!(gm.status, Status::Stable);

    // ------------------------------------------------------ Algorithm 2 --
    section("Algorithm 2 — node-kind recovery and Gamma → dataflow");
    for r in &conv2.program.reactions {
        println!("{:10} recovered as {:?}", r.name, recover_shape(r));
    }
    let back = gamma_to_dataflow(&conv2.program, &conv2.initial).unwrap();
    println!(
        "\nstitched graph: {} nodes, {} edges; isomorphic to Fig. 2: {}",
        back.node_count(),
        back.edge_count(),
        gammaflow::dataflow::iso::isomorphic(&back, &fig2)
    );

    // ---------------------------------------------------------- Fig. 4 --
    section("Fig. 4 — mapping a multiset onto replicated reaction graphs");
    let r = parse_reaction("R = replace [x,'n'], [y,'n'] by [x+y,'s']").unwrap();
    let m6: ElementBag = (1..=6).map(|v| Element::pair(v, "n")).collect();
    let mapping = map_multiset(&r, &m6, usize::MAX).unwrap();
    println!(
        "|M| = 6, arity 2 → {} instances (the figure shows 3), leftover {}",
        mapping.instances, mapping.leftover
    );
    let run = SeqEngine::new(&mapping.graph).run().unwrap();
    println!("one chemical round produces: {}", run.outputs);

    println!("\nwalkthrough complete ✓");
}
