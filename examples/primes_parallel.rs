//! The classic Gamma prime sieve (`replace x, y by y where x % y == 0`)
//! on the sequential and parallel interpreters.
//!
//! This is the stress test for *matching*: every element shares one label,
//! so the `(label, tag)` index degenerates and the backtracking matcher
//! with its `where` condition does the real work.
//!
//! ```sh
//! cargo run --release --example primes_parallel [n]
//! ```

use gammaflow::gamma::{run_parallel, ParConfig, SeqInterpreter, Status};
use gammaflow::lang::pretty_program;
use gammaflow::workloads::primes;
use std::time::Instant;

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let w = primes(n);
    println!(
        "sieving 2..={n} — program:\n{}\n",
        pretty_program(&w.program)
    );

    let t0 = Instant::now();
    let seq = SeqInterpreter::with_seed(&w.program, w.initial.clone(), 1)
        .run()
        .unwrap();
    let seq_time = t0.elapsed();
    assert_eq!(seq.status, Status::Stable);
    assert_eq!(seq.multiset, w.expected);
    println!(
        "sequential: {} firings, {} primes, {seq_time:?}",
        seq.stats.firings_total(),
        seq.multiset.len()
    );

    for workers in [1, 2, 4, 8] {
        let t0 = Instant::now();
        let par = run_parallel(
            &w.program,
            w.initial.clone(),
            &ParConfig {
                workers,
                seed: 1,
                ..ParConfig::default()
            },
        )
        .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(par.exec.multiset, w.expected, "{workers} workers");
        println!(
            "parallel x{workers}: {} firings, {} claim races, {} dry probes, {elapsed:?}",
            par.exec.stats.firings_total(),
            par.par.claim_failures,
            par.par.dry_probes,
        );
    }

    let primes_found: Vec<i64> = w
        .expected
        .sorted_elements()
        .iter()
        .map(|e| e.value.as_int().unwrap())
        .collect();
    println!(
        "\nfirst primes: {:?}{}",
        &primes_found[..primes_found.len().min(12)],
        if primes_found.len() > 12 { " …" } else { "" }
    );
}
