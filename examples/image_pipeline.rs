//! Image segmentation as multiset rewriting (the chemical-model image
//! processing the paper cites via ref. [21]), run as a three-stage Gamma
//! pipeline: per-pixel threshold → foreground-count merge → finalise.
//!
//! ```sh
//! cargo run --release --example image_pipeline [pixels]
//! ```

use gammaflow::gamma::{run_pipeline, ExecConfig, Status};
use gammaflow::workloads::image_scenario;
use std::time::Instant;

fn main() {
    let pixels: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let s = image_scenario(7, pixels);
    println!("synthetic image: {pixels} pixels, threshold 128");

    let t0 = Instant::now();
    let result = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(result.status, Status::Stable);
    assert_eq!(result.multiset, s.expected);

    let fg = result
        .multiset
        .iter()
        .find(|e| e.label.as_str() == "fg")
        .map(|e| e.value.as_int().unwrap())
        .unwrap_or(0);
    println!(
        "segmented in {elapsed:?}: {} firings total, foreground pixels = {fg} ({:.1}%)",
        result.stats.firings_total(),
        100.0 * fg as f64 / pixels as f64
    );

    // Render a tiny ASCII strip of the segmentation for flavour.
    let mut bits: Vec<(u64, i64)> = result
        .multiset
        .iter()
        .filter(|e| e.label.as_str() == "seg")
        .map(|e| (e.tag.0, e.value.as_int().unwrap()))
        .collect();
    bits.sort();
    let strip: String = bits
        .iter()
        .take(80)
        .map(|&(_, b)| if b == 1 { '#' } else { '.' })
        .collect();
    println!("first 80 pixels: {strip}");
}
