//! Target-tracking data fusion on the parallel Gamma interpreter — the
//! application domain of the paper's reference [1], synthesised per
//! DESIGN.md's substitution rule.
//!
//! Sensor measurements of many targets are fused per-target (tag-grouped
//! reactions), then classified against an alert threshold. Stage 1 runs on
//! the shared-memory parallel interpreter to show worker scaling.
//!
//! ```sh
//! cargo run --release --example target_tracking
//! ```

use gammaflow::gamma::{run_parallel, run_pipeline, ExecConfig, ParConfig, SeqInterpreter};
use gammaflow::workloads::fusion_scenario;
use std::time::Instant;

fn main() {
    let targets = 64;
    let per_target = 256;
    let s = fusion_scenario(2024, targets, per_target);
    println!(
        "scenario: {targets} targets x {per_target} measurements = {} elements",
        s.initial.len()
    );

    // Reference: the whole pipeline sequentially.
    let t0 = Instant::now();
    let seq = run_pipeline(&s.pipeline, s.initial.clone(), &ExecConfig::default()).unwrap();
    let seq_time = t0.elapsed();
    println!(
        "sequential pipeline: {} firings in {seq_time:?}",
        seq.stats.firings_total()
    );
    assert_eq!(seq.multiset, s.expected);

    // Parallel fusion stage with increasing worker counts.
    let fuse_stage = &s.pipeline.stages[0];
    for workers in [1, 2, 4, 8] {
        let t0 = Instant::now();
        let par = run_parallel(
            fuse_stage,
            s.initial.clone(),
            &ParConfig {
                workers,
                seed: 7,
                ..ParConfig::default()
            },
        )
        .unwrap();
        let elapsed = t0.elapsed();
        println!(
            "fusion stage, {workers} worker(s): {} firings, {} claim races, {} snapshot checks, {elapsed:?}",
            par.exec.stats.firings_total(),
            par.par.claim_failures,
            par.par.snapshot_checks,
        );
        // Finish classification sequentially and verify.
        let classify = &s.pipeline.stages[1];
        let done = SeqInterpreter::with_seed(classify, par.exec.multiset, 0)
            .run()
            .unwrap();
        assert_eq!(done.multiset, s.expected, "{workers} workers");
    }

    let alerts = s
        .expected
        .iter()
        .filter(|e| e.label.as_str() == "alert")
        .count();
    println!("\ntracks: {targets}, alerts raised: {alerts}  — all engines agree");
}
