//! `gammad` in miniature: three tenants multiplexed over one service —
//! shared parked-worker pool, fair wave scheduling, per-tenant budgets,
//! idle eviction, and a tenant-tagged trace you can slice with
//! `gamma-inspect --tenant`.
//!
//! ```sh
//! cargo run --example gammad_service
//! cargo run -p gammaflow-bench --bin gamma-inspect -- /tmp/gammad_example.jsonl --tenant alice
//! ```

use gammaflow::gamma::{
    ElementSpec, EngineConfig, Expr, GammaProgram, Pattern, ReactionSpec, Scheduling,
};
use gammaflow::multiset::value::BinOp;
use gammaflow::multiset::{Element, ElementBag};
use gammaflow::service::{ServiceConfig, ServiceRuntime};

fn main() {
    // One shared program: double every `in` element into `out`.
    let program = GammaProgram::new(vec![ReactionSpec::new("double")
        .replace(Pattern::pair("x", "in"))
        .by(vec![ElementSpec::pair(
            Expr::bin(BinOp::Mul, Expr::var("x"), Expr::int(2)),
            "out",
        )])]);

    let trace_path = std::env::temp_dir().join("gammad_example.jsonl");
    let svc = ServiceRuntime::new(ServiceConfig {
        default_bag_budget: 64,
        trace_path: Some(trace_path.to_string_lossy().into_owned()),
        ..ServiceConfig::default()
    })
    .expect("trace file creates");

    // Three tenants; each may shape its own engine.
    for (tenant, scheduling) in [
        ("alice", Scheduling::Rete),
        ("bob", Scheduling::Delta),
        ("carol", Scheduling::Rescan),
    ] {
        svc.register(
            tenant,
            &program,
            EngineConfig {
                scheduling,
                ..EngineConfig::default()
            },
            ElementBag::new(),
        )
        .expect("tenant registers");
    }

    // Interleaved traffic: inject a wave per tenant, let the FIFO
    // scheduler round-robin them, repeat.
    for round in 0..3i64 {
        for (t, tenant) in ["alice", "bob", "carol"].iter().enumerate() {
            let elems = (0..8).map(|j| Element::pair(round * 100 + t as i64 * 10 + j, "in"));
            let outcome = svc.inject(tenant, elems).expect("tenant known");
            assert!(outcome.is_accepted(), "well under the budget");
        }
        while let Some(report) = svc.run_next_wave().expect("wave runs") {
            println!(
                "round {round}: tenant {:<6} fired {:>3} in one wave",
                report.tenant, report.wave.fired
            );
        }
    }

    // Idle eviction: everyone is quiet now, so all three park as
    // snapshots; the next inject would restore transparently.
    let parked = svc.evict_idle(0).expect("census walks");
    println!("evicted {parked} idle tenants -> census {:?}", svc.census());

    // One scrape page for the whole process, keyed by tenant.
    let page = svc.metrics();
    for m in page
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("gammad_"))
    {
        println!("{:<36} {}", m.name, m.value);
    }

    svc.flush_trace();
    println!(
        "tenant-tagged trace at {} — try: gamma-inspect {} --tenant bob",
        trace_path.display(),
        trace_path.display()
    );
}
