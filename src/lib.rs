//! # gammaflow
//!
//! A faithful, executable reproduction of *"Exploring the Equivalence
//! between Dynamic Dataflow Model and Gamma — General Abstract Model for
//! Multiset mAnipulation"* (Mello Jr. et al., 2019).
//!
//! The workspace builds **both** computational models from scratch and the
//! conversion algorithms between them:
//!
//! * [`multiset`] — tagged elements `[value, label, tag]`, counted bags,
//!   indexed and concurrent multisets.
//! * [`gamma`] — the Gamma model: reactions, the Γ operator, sequential and
//!   parallel interpreters with steady-state termination.
//! * [`dataflow`] — the dynamic (tagged-token) dataflow model: graphs,
//!   steer/inctag nodes, waiting–matching store, sequential and multi-PE
//!   engines.
//! * [`lang`] — the paper's Fig. 3 Gamma syntax: parser, pretty-printer, and
//!   a compiler to executable reactions.
//! * [`frontend`] — a mini imperative language that regenerates the paper's
//!   example graphs (Figs. 1–2) from C-like source.
//! * [`core`] — the paper's contribution: Algorithm 1 (dataflow → Gamma),
//!   Algorithm 2 (Gamma → dataflow, incl. the Fig. 4 multiset mapping),
//!   §III-A3 reductions, and differential equivalence checking.
//! * [`workloads`] — generators and classic Gamma/dataflow programs used by
//!   tests and benchmarks.
//! * [`service`] — `gammad`: a multi-tenant session service multiplexing
//!   thousands of Gamma sessions over one shared parked-worker pool, with
//!   fair wave scheduling, per-tenant budgets, and idle eviction.
//!
//! ## Quickstart
//!
//! ```
//! use gammaflow::prelude::*;
//!
//! // The paper's Example 1: m = (x + y) - (k * j).
//! let src = "int x = 1; int y = 5; int k = 3; int j = 2; int m; m = (x + y) - (k * j);";
//! let graph = gammaflow::frontend::compile(src).unwrap();
//!
//! // Run it on the dataflow engine...
//! let df = gammaflow::dataflow::SeqEngine::new(&graph).run().unwrap();
//!
//! // ...convert it with Algorithm 1 and run the Gamma program instead.
//! let conv = gammaflow::core::dataflow_to_gamma(&graph).unwrap();
//! let gm = gammaflow::gamma::SeqInterpreter::with_seed(&conv.program, conv.initial.clone(), 42)
//!     .run()
//!     .unwrap();
//!
//! // Both models agree on the output edge `m`.
//! let m = Symbol::intern("m");
//! assert_eq!(
//!     df.outputs.project(|l| l == m),
//!     gm.multiset.project(|l| l == m),
//! );
//! ```
//!
//! ## Streaming: sessions and incremental input
//!
//! For continuous traffic, hold a [`gamma::Session`] instead of calling
//! a one-shot interpreter per batch: the compiled program and the live
//! matcher state persist, so each wave costs O(delta) instead of a
//! rebuild (see `ARCHITECTURE.md` § "Sessions & incremental input").
//!
//! ```
//! use gammaflow::prelude::*;
//! use gammaflow::workloads::windowed_sum;
//!
//! let stream = windowed_sum(3, 2, 4, 7); // 3 waves × 2 windows × 4 readings
//! let mut session = Session::build(&stream.program)
//!     .start(stream.initial.clone())
//!     .unwrap();
//! for wave in &stream.waves {
//!     session.inject(wave.iter().cloned());
//!     session.run_to_stable().unwrap(); // resumes the persistent network
//! }
//! assert_eq!(session.finish().multiset, stream.expected);
//! ```

pub use gammaflow_core as core;
pub use gammaflow_dataflow as dataflow;
pub use gammaflow_frontend as frontend;
pub use gammaflow_gamma as gamma;
pub use gammaflow_lang as lang;
pub use gammaflow_multiset as multiset;
pub use gammaflow_service as service;
pub use gammaflow_workloads as workloads;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use gammaflow_core::{dataflow_to_gamma, gamma_to_dataflow};
    pub use gammaflow_dataflow::{GraphBuilder, SeqEngine};
    pub use gammaflow_gamma::{Engine, EngineConfig, GammaProgram, SeqInterpreter, Session, Wave};
    pub use gammaflow_multiset::{Element, ElementBag, Symbol, Tag, Value};
}
