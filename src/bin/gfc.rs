//! `gfc` — the gammaflow command line.
//!
//! A downstream-user tool over the library: compile mini-C to dataflow
//! graphs, convert in both directions (Algorithms 1 and 2), execute either
//! model, check equivalence, fuse reactions, and analyse traces for reuse.
//!
//! ```text
//! gfc compile  <file.mc> [--dot]            mini-C -> dataflow graph
//! gfc run-df   <file.mc>                    compile and run the dataflow engine
//! gfc convert  <file.mc>                    Algorithm 1: print Gamma code + M
//! gfc run-gamma <file.gamma> -m '<elems>' [--seed N] [--trace]
//!                                           run a Gamma program on multiset M
//! gfc reverse  <file.gamma> -m '<elems>' [--dot]
//!                                           Algorithm 2: stitch to a dataflow graph
//! gfc check    <file.mc>                    differential equivalence report
//! gfc fuse     <file.gamma> [--protect L1,L2,...]
//!                                           §III-A3 reduction pass
//! gfc reuse    <file.gamma> -m '<elems>'    DF-DTM-style trace-reuse analysis
//! ```
//!
//! Multiset literals use the paper's syntax: `{[1,'A1'], [5,'B1'], [3,'C1',2]}`
//! (braces optional, third field = tag, default 0).

use gammaflow::core::{
    canonicalize_vars, check_equivalence, dataflow_to_gamma, fuse_all, gamma_to_dataflow,
    CheckConfig,
};
use gammaflow::dataflow::engine::{EngineConfig, SeqEngine};
use gammaflow::gamma::{analyze_reuse, ExecConfig, Selection, SeqInterpreter};
use gammaflow::lang::{parse_multiset, parse_program, pretty_program};
use gammaflow::multiset::{ElementBag, Symbol};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "gfc — gammaflow CLI

USAGE:
  gfc compile   <file.mc> [--dot]
  gfc run-df    <file.mc>
  gfc convert   <file.mc>
  gfc run-gamma <file.gamma> -m '<multiset>' [--seed N] [--trace]
  gfc reverse   <file.gamma> -m '<multiset>' [--dot]
  gfc check     <file.mc>
  gfc fuse      <file.gamma> [--protect L1,L2,...]
  gfc reuse     <file.gamma> -m '<multiset>'

Multisets use the paper's literal syntax: {{[1,'A1'], [5,'B1',2]}}."
    );
    ExitCode::from(2)
}

/// Minimal flag extraction: returns (positional args, flag values).
struct Args {
    positional: Vec<String>,
    multiset: Option<String>,
    seed: u64,
    dot: bool,
    trace: bool,
    protect: Vec<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        positional: Vec::new(),
        multiset: None,
        seed: 0,
        dot: false,
        trace: false,
        protect: Vec::new(),
    };
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "-m" | "--multiset" => {
                i += 1;
                args.multiset = Some(
                    raw.get(i)
                        .ok_or("missing value after -m/--multiset")?
                        .clone(),
                );
            }
            "--seed" => {
                i += 1;
                args.seed = raw
                    .get(i)
                    .ok_or("missing value after --seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--dot" => args.dot = true,
            "--trace" => args.trace = true,
            "--protect" => {
                i += 1;
                args.protect = raw
                    .get(i)
                    .ok_or("missing value after --protect")?
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            other => args.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(args)
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn need_multiset(args: &Args) -> Result<ElementBag, String> {
    let text = args
        .multiset
        .as_deref()
        .ok_or("this command needs -m '<multiset>'")?;
    parse_multiset(text).map_err(|e| format!("bad multiset literal: {e}"))
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.mc>")?)?;
    let g = gammaflow::frontend::compile(&src).map_err(|e| e.to_string())?;
    if args.dot {
        print!("{}", g.to_dot());
    } else {
        println!(
            "compiled: {} nodes ({} roots, {} outputs), {} edges",
            g.node_count(),
            g.roots().count(),
            g.outputs().count(),
            g.edge_count()
        );
        for n in g.nodes() {
            println!("  {:12} {}", n.name, n.kind);
        }
    }
    Ok(())
}

fn cmd_run_df(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.mc>")?)?;
    let g = gammaflow::frontend::compile(&src).map_err(|e| e.to_string())?;
    let result = SeqEngine::with_config(&g, EngineConfig::default())
        .run()
        .map_err(|e| e.to_string())?;
    println!("status:  {:?}", result.status);
    println!("outputs: {}", result.outputs);
    println!("firings: {}", result.stats.fired_total());
    println!("profile: {:?}", result.profile);
    if !result.residue.is_empty() {
        println!(
            "residue: {} stuck tokens (tag mismatch?)",
            result.residue.len()
        );
    }
    Ok(())
}

fn cmd_convert(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.mc>")?)?;
    let g = gammaflow::frontend::compile(&src).map_err(|e| e.to_string())?;
    let conv = dataflow_to_gamma(&g).map_err(|e| e.to_string())?;
    println!("{}", pretty_program(&conv.program));
    println!("\n# initial multiset");
    println!("# M = {}", conv.initial);
    println!(
        "# output labels: {}",
        conv.output_labels
            .iter()
            .map(|l| l.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn cmd_run_gamma(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.gamma>")?)?;
    let prog = parse_program(&src).map_err(|e| e.to_string())?;
    let initial = need_multiset(args)?;
    let config = ExecConfig {
        record_trace: args.trace,
        selection: Selection::Seeded(args.seed),
        ..ExecConfig::default()
    };
    let result = SeqInterpreter::with_config(&prog, initial, config)
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;
    println!("status:       {:?}", result.status);
    println!("steady state: {}", result.multiset);
    println!("firings:      {}", result.stats.firings_total());
    for (r, n) in prog
        .reactions
        .iter()
        .zip(&result.stats.firings_per_reaction)
    {
        println!("  {:12} {n}", r.name);
    }
    if let Some(trace) = result.trace {
        println!("trace:");
        for rec in trace.iter().take(50) {
            println!(
                "  #{:<4} {:8} consumed {:?} produced {:?}",
                rec.step,
                rec.reaction,
                rec.consumed
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>(),
                rec.produced
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
            );
        }
        if trace.len() > 50 {
            println!("  … {} more", trace.len() - 50);
        }
    }
    Ok(())
}

fn cmd_reverse(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.gamma>")?)?;
    let prog = parse_program(&src).map_err(|e| e.to_string())?;
    let initial = need_multiset(args)?;
    let g = gamma_to_dataflow(&prog, &initial).map_err(|e| e.to_string())?;
    if args.dot {
        print!("{}", g.to_dot());
    } else {
        println!(
            "stitched: {} nodes, {} edges, outputs on {:?}",
            g.node_count(),
            g.edge_count(),
            g.output_labels()
                .iter()
                .map(|l| l.as_str())
                .collect::<Vec<_>>()
        );
    }
    Ok(())
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.mc>")?)?;
    let g = gammaflow::frontend::compile(&src).map_err(|e| e.to_string())?;
    let report = check_equivalence(
        &g,
        &CheckConfig {
            seeds: vec![args.seed, args.seed + 1, args.seed + 2],
            parallel_workers: 2,
            ..CheckConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!("equivalent:        {}", report.equivalent);
    println!("dataflow outputs:  {}", report.dataflow_outputs);
    for (seed, out) in &report.gamma_outputs {
        if *seed == u64::MAX {
            println!("gamma (parallel):  {out}");
        } else {
            println!("gamma (seed {seed}):    {out}");
        }
    }
    if let Some(m) = &report.mismatch {
        println!("MISMATCH: {m}");
        return Err("models disagree".into());
    }
    Ok(())
}

fn cmd_fuse(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.gamma>")?)?;
    let prog = parse_program(&src).map_err(|e| e.to_string())?;
    let protected: Vec<Symbol> = args.protect.iter().map(|l| Symbol::intern(l)).collect();
    let (mut fused, report) = fuse_all(&prog, &protected);
    // Canonical variable names (id1, id2, …) keep fused output readable.
    for r in &mut fused.reactions {
        *r = canonicalize_vars(r);
    }
    println!(
        "# fused {} -> {} reactions; steps: {:?}",
        report.before, report.after, report.fused
    );
    println!("{}", pretty_program(&fused));
    Ok(())
}

fn cmd_reuse(args: &Args) -> Result<(), String> {
    let src = read_file(args.positional.first().ok_or("missing <file.gamma>")?)?;
    let prog = parse_program(&src).map_err(|e| e.to_string())?;
    let initial = need_multiset(args)?;
    let config = ExecConfig {
        record_trace: true,
        selection: Selection::Seeded(args.seed),
        ..ExecConfig::default()
    };
    let result = SeqInterpreter::with_config(&prog, initial, config)
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;
    let report = analyze_reuse(result.trace.as_deref().unwrap_or(&[]));
    println!(
        "trace: {} firings, {} redundant ({:.1}% memoizable)",
        report.total,
        report.redundant,
        report.ratio() * 100.0
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "reaction", "firings", "distinct", "reuse"
    );
    for row in &report.per_reaction {
        println!(
            "{:<16} {:>10} {:>10} {:>10}",
            row.name,
            row.firings,
            row.distinct,
            row.redundant()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        return usage();
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "compile" => cmd_compile(&args),
        "run-df" => cmd_run_df(&args),
        "convert" => cmd_convert(&args),
        "run-gamma" => cmd_run_gamma(&args),
        "reverse" => cmd_reverse(&args),
        "check" => cmd_check(&args),
        "fuse" => cmd_fuse(&args),
        "reuse" => cmd_reuse(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
